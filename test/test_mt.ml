(* Multi-domain tests: the concurrency layer under real [Domain.spawn]
   parallelism — a differential stress against per-domain Map oracles,
   the Rwlock admission protocol (writer preference, no reader
   starvation), lock-free Hash_dir reads racing a remover, and
   concurrent EPallocator traffic.

   The stress tests partition the keyspace: each domain owns its keys
   and is the only writer of them, so each domain's oracle is exact and
   the merged oracle must equal the final tree. Cross-domain searches
   race by design and only assert well-formedness. *)

module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Pmem = Hart_pmem.Pmem
module Rng = Hart_util.Rng
module Chunk = Hart_core.Chunk
module Epalloc = Hart_core.Epalloc
module Hash_dir = Hart_core.Hash_dir
module Hart = Hart_core.Hart
module Hart_mt = Hart_core.Hart_mt
module Rwlock = Hart_core.Rwlock
module SMap = Map.Make (String)

(* pre-sized so [Pmem.grow] never fires while domains run (growth swaps
   the backing buffers; multi-domain pools must be pre-sized) *)
let fresh_mt () =
  let pool =
    Pmem.create ~capacity:(1 lsl 26) ~max_capacity:(1 lsl 27)
      (Meter.create Latency.c300_100)
  in
  Hart_mt.create pool

(* ------------------------------------------------------------------ *)
(* Differential stress: N domains of random ops vs per-domain oracles  *)

let n_domains = 4
let ops_per_domain = 25_000 (* 4 x 25k = 1e5 ops minimum, per ISSUE *)

let stress_once ~seed ~with_foreign_reads =
  let t = fresh_mt () in
  let keys_per_domain = 2_000 in
  let key d i = Printf.sprintf "k%d_%04d" d i in
  let oracles =
    Array.init n_domains (fun d ->
        ignore d;
        ref SMap.empty)
  in
  (* Worker-side assertions must not go through [Alcotest.check]: its
     success-path logging formats through a shared [Format] state,
     which is not domain-safe (racing workers can crash the pretty-
     printer's internal queue). Raise a plain exception instead —
     built with [Printf], which allocates nothing shared — and let the
     joining main domain report it. *)
  let require cond fmt = Printf.ksprintf (fun s -> if not cond then failwith s) fmt in
  let worker d () =
    let rng = Rng.create (Int64.of_int (seed + d)) in
    let oracle = oracles.(d) in
    for _ = 1 to ops_per_domain do
      let k = key d (Rng.int rng keys_per_domain) in
      match Rng.int rng (if with_foreign_reads then 5 else 4) with
      | 0 ->
          let v = Printf.sprintf "v%d" (Rng.int rng 1_000_000) in
          Hart_mt.insert t ~key:k ~value:v;
          oracle := SMap.add k v !oracle
      | 1 ->
          let v = Printf.sprintf "u%d" (Rng.int rng 1_000_000) in
          let updated = Hart_mt.update t ~key:k ~value:v in
          require
            (updated = SMap.mem k !oracle)
            "update of %s hit=%b disagrees with oracle" k updated;
          if updated then oracle := SMap.add k v !oracle
      | 2 ->
          let deleted = Hart_mt.delete t k in
          require
            (deleted = SMap.mem k !oracle)
            "delete of %s hit=%b disagrees with oracle" k deleted;
          oracle := SMap.remove k !oracle
      | 3 ->
          let got = Hart_mt.search t k in
          require
            (got = SMap.find_opt k !oracle)
            "search of %s disagrees with owner oracle" k
      | _ ->
          (* foreign read: races with the owner, only well-formedness *)
          let other = (d + 1 + Rng.int rng (n_domains - 1)) mod n_domains in
          let fk = key other (Rng.int rng keys_per_domain) in
          (match Hart_mt.search t fk with
          | None -> ()
          | Some v ->
              require
                (String.length v > 0 && (v.[0] = 'v' || v.[0] = 'u'))
                "foreign read returned garbage %S" v)
    done
  in
  let domains =
    Array.init (n_domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
  in
  worker 0 ();
  Array.iter Domain.join domains;
  (* merged oracle must equal the quiesced tree exactly *)
  let merged =
    Array.fold_left
      (fun acc o -> SMap.union (fun _ _ _ -> assert false) acc !o)
      SMap.empty oracles
  in
  let hart = Hart_mt.underlying t in
  Hart.check_integrity hart;
  let dumped = ref SMap.empty in
  Hart.iter hart (fun k v -> dumped := SMap.add k v !dumped);
  Alcotest.(check int) "count matches oracle" (SMap.cardinal merged)
    (Hart_mt.count t);
  Alcotest.(check (list (pair string string)))
    "bindings match merged oracle" (SMap.bindings merged)
    (SMap.bindings !dumped)

let test_stress_partitioned () = stress_once ~seed:42 ~with_foreign_reads:false
let test_stress_foreign_reads () = stress_once ~seed:1337 ~with_foreign_reads:true

(* ------------------------------------------------------------------ *)
(* Rwlock admission protocol                                           *)

(* While a writer waits, incoming readers must block (writer
   preference); once the writer exits, the blocked readers must all get
   in (no starvation). *)
let test_rwlock_writer_preference () =
  let l = Rwlock.create () in
  let writer_in = Atomic.make false and reader2_in = Atomic.make false in
  Rwlock.read_lock l;
  let writer =
    Domain.spawn (fun () ->
        Rwlock.write_lock l;
        Atomic.set writer_in true;
        Unix.sleepf 0.05;
        Rwlock.write_unlock l)
  in
  (* give the writer time to queue up on the held read lock *)
  Unix.sleepf 0.05;
  Alcotest.(check bool) "writer blocked by reader" false (Atomic.get writer_in);
  let reader2 =
    Domain.spawn (fun () ->
        Rwlock.read_lock l;
        Atomic.set reader2_in true;
        (* the waiting writer must have been admitted first *)
        let writer_went_first = Atomic.get writer_in in
        Rwlock.read_unlock l;
        writer_went_first)
  in
  Unix.sleepf 0.05;
  Alcotest.(check bool)
    "late reader blocked while writer waits" false (Atomic.get reader2_in);
  Rwlock.read_unlock l;
  Domain.join writer;
  Alcotest.(check bool)
    "writer admitted before the late reader" true (Domain.join reader2);
  Alcotest.(check bool) "late reader admitted after writer exit" true
    (Atomic.get reader2_in)

(* Hammer the lock from reader and writer domains; every reader must
   complete (no starvation) and the protected counter must show no lost
   updates (mutual exclusion). *)
let test_rwlock_no_starvation () =
  let l = Rwlock.create () in
  let shared = ref 0 in
  let n_writers = 2 and n_readers = 4 and rounds = 2_000 in
  let reads_done = Atomic.make 0 in
  let writers =
    Array.init n_writers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              Rwlock.with_write l (fun () -> incr shared)
            done))
  in
  let readers =
    Array.init n_readers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              Rwlock.with_read l (fun () ->
                  let v = !shared in
                  if v < 0 || v > n_writers * rounds then
                    Alcotest.failf "torn counter read %d" v);
              Atomic.incr reads_done
            done))
  in
  Array.iter Domain.join writers;
  Array.iter Domain.join readers;
  Alcotest.(check int) "no lost writer updates" (n_writers * rounds) !shared;
  Alcotest.(check int)
    "every reader round completed" (n_readers * rounds)
    (Atomic.get reads_done);
  Alcotest.(check int) "lock drained" 0 (Rwlock.readers l);
  Alcotest.(check bool) "no writer left" false (Rwlock.writer_active l)

(* ------------------------------------------------------------------ *)
(* Hash_dir: lock-free readers racing inserts and backward-shift       *)
(* removes                                                             *)

let test_hash_dir_readers_vs_remover () =
  let d = Hash_dir.create ~initial_buckets:64 () in
  let n_keys = 200 in
  let key i = Printf.sprintf "hk%03d" i in
  for i = 0 to (n_keys / 2) - 1 do
    Hash_dir.insert d (key i) i
  done;
  let stop = Atomic.make false in
  let readers =
    Array.init 2 (fun r ->
        Domain.spawn (fun () ->
            let rng = Rng.create (Int64.of_int (7 + r)) in
            let n = ref 0 in
            while not (Atomic.get stop) do
              let i = Rng.int rng n_keys in
              (match Hash_dir.find d (key i) with
              | None -> ()
              | Some v ->
                  if v <> i then
                    Alcotest.failf "reader saw %d under key %d" v i);
              incr n
            done;
            !n))
  in
  (* single writer: grow past several resizes, then churn removes and
     re-inserts so readers cross many backward-shift windows *)
  for i = n_keys / 2 to n_keys - 1 do
    Hash_dir.insert d (key i) i
  done;
  let rng = Rng.create 99L in
  for _ = 1 to 20_000 do
    let i = Rng.int rng n_keys in
    if Rng.int rng 2 = 0 then Hash_dir.remove d (key i)
    else Hash_dir.insert d (key i) i
  done;
  Atomic.set stop true;
  let reads = Array.fold_left (fun acc r -> acc + Domain.join r) 0 readers in
  Alcotest.(check bool) "readers made progress" true (reads > 0);
  Hash_dir.check_invariants d

(* ------------------------------------------------------------------ *)
(* EPallocator: concurrent alloc/commit/free traffic                   *)

let test_epalloc_concurrent () =
  let pool =
    Pmem.create ~capacity:(1 lsl 24) ~max_capacity:(1 lsl 25)
      (Meter.create Latency.c300_100)
  in
  let ep = Epalloc.create pool in
  let per_domain = 3_000 in
  let worker d () =
    let rng = Rng.create (Int64.of_int (100 + d)) in
    let held = ref [] in
    for _ = 1 to per_domain do
      if Rng.int rng 3 < 2 || !held = [] then begin
        (* allocate and commit a value object *)
        let cls = if Rng.int rng 2 = 0 then Chunk.Val8 else Chunk.Val16 in
        let obj = Epalloc.epmalloc ep cls in
        Epalloc.set_obj_bit ep cls ~obj;
        held := (cls, obj) :: !held
      end
      else begin
        match !held with
        | (cls, obj) :: rest ->
            held := rest;
            Epalloc.reset_obj_bit ep cls ~obj;
            (* opportunistic recycling is safe on any chunk *)
            if Rng.int rng 8 = 0 then
              Epalloc.eprecycle ep cls ~chunk:(Epalloc.chunk_of_obj ep cls obj)
        | [] -> ()
      end
    done;
    List.length !held
  in
  let domains =
    Array.init (n_domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
  in
  let held0 = worker 0 () in
  let held_rest = Array.fold_left (fun a d -> a + Domain.join d) 0 domains in
  Epalloc.check_invariants ep;
  let live =
    Epalloc.live_objects ep Chunk.Val8 + Epalloc.live_objects ep Chunk.Val16
  in
  Alcotest.(check int) "live objects = committed minus freed"
    (held0 + held_rest) live

(* ------------------------------------------------------------------ *)
(* Delete-churn recycler storm: every domain owns a key slice and runs
   waves of insert-everything / delete-everything, so whole leaf and
   value chunks keep emptying and refilling concurrently — the hostile
   case for [Epalloc]'s recycler. Afterwards the structural stats must
   account for exactly the surviving keys (no leaked objects), integrity
   must hold (no double-held objects: a bitmap bit referenced by two
   leaves, or set with no referencing leaf, fails [check_integrity]),
   and the chunk population must stay near the live peak (proof chunks
   were recycled rather than accreted across waves).                    *)

let test_recycler_churn_storm () =
  let t = fresh_mt () in
  let keys_per_domain = 1_500 in
  let waves = 4 in
  let key d i = Printf.sprintf "st%d_%04d" d i in
  let require cond fmt =
    Printf.ksprintf (fun s -> if not cond then failwith s) fmt
  in
  (* odd waves write 15-byte values (Val16), even waves 7-byte (Val8),
     so value chunks of both classes churn through the recycler too *)
  let value w i =
    if w land 1 = 1 then Printf.sprintf "wave%02d-obj%04d" w (i mod 10_000)
    else Printf.sprintf "w%02d%03d" w (i mod 1000)
  in
  let worker d () =
    for w = 1 to waves do
      for i = 0 to keys_per_domain - 1 do
        Hart_mt.insert t ~key:(key d i) ~value:(value w i)
      done;
      if w < waves then
        for i = 0 to keys_per_domain - 1 do
          require (Hart_mt.delete t (key d i))
            "churn wave %d: delete of own key %s missed" w (key d i)
        done
    done
  in
  let domains =
    Array.init (n_domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
  in
  worker 0 ();
  Array.iter Domain.join domains;
  let hart = Hart_mt.underlying t in
  Hart.check_integrity hart;
  Epalloc.check_invariants (Hart.alloc hart);
  let stats = Hart_core.Hart_stats.collect hart in
  let survivors = n_domains * keys_per_domain in
  Alcotest.(check int) "surviving keys" survivors stats.Hart_core.Hart_stats.keys;
  Alcotest.(check int) "live leaves = surviving keys" survivors
    stats.Hart_core.Hart_stats.leaf_class.Hart_core.Hart_stats.live_objects;
  (* final wave is even: all survivors hold Val8 values; every Val16
     from the odd waves must have been freed *)
  Alcotest.(check int) "live Val8 values = surviving keys" survivors
    stats.Hart_core.Hart_stats.val8_class.Hart_core.Hart_stats.live_objects;
  Alcotest.(check int) "no leaked Val16 values" 0
    stats.Hart_core.Hart_stats.val16_class.Hart_core.Hart_stats.live_objects;
  Alcotest.(check int) "no leaked Val32 values" 0
    stats.Hart_core.Hart_stats.val32_class.Hart_core.Hart_stats.live_objects;
  (* chunks must track the live peak, not the total traffic: [waves]
     full populations were allocated, but capacity must stay within the
     peak of two interleaved populations plus per-domain slack *)
  let max_capacity cls_name (c : Hart_core.Hart_stats.class_stats) =
    let bound = (2 * survivors) + (2 * 56 * n_domains) in
    if c.Hart_core.Hart_stats.capacity > bound then
      Alcotest.failf "%s chunks accreted: capacity %d > bound %d (waves=%d)"
        cls_name c.Hart_core.Hart_stats.capacity bound waves
  in
  max_capacity "leaf" stats.Hart_core.Hart_stats.leaf_class;
  max_capacity "val8" stats.Hart_core.Hart_stats.val8_class;
  max_capacity "val16" stats.Hart_core.Hart_stats.val16_class;
  (* the ART bitmap node layer must survive the same storm: the physical
     census (DESIGN.md §14) has to agree with the modelled histogram,
     and delete churn must not defeat the shrink hysteresis (dense child
     slots at least quarter-occupied) or accrete pool slabs past the
     live population *)
  let p = stats.Hart_core.Hart_stats.art_pools in
  let h = stats.Hart_core.Hart_stats.art_nodes in
  Alcotest.(check int) "bitmap census = modelled histogram"
    (h.Hart_core.Hart_stats.n4 + h.Hart_core.Hart_stats.n16
   + h.Hart_core.Hart_stats.n48 + h.Hart_core.Hart_stats.n256)
    (List.fold_left
       (fun a (_, c) -> a + c)
       0 p.Hart_core.Hart_stats.nodes_by_cap);
  require
    (4 * p.Hart_core.Hart_stats.dense_used
    > p.Hart_core.Hart_stats.dense_reserved)
    "dense occupancy floor violated after churn: used %d, reserved %d"
    p.Hart_core.Hart_stats.dense_used p.Hart_core.Hart_stats.dense_reserved;
  require
    (p.Hart_core.Hart_stats.free_leaf_slots <= survivors)
    "leaf table accreted: %d free slots for %d survivors"
    p.Hart_core.Hart_stats.free_leaf_slots survivors

(* ------------------------------------------------------------------ *)
(* Striped_mt over a toy index: the commuting contract is load-bearing  *)

(* A deliberately fragile PM index: an append-only log at fixed offsets
   whose commit point is a read-modify-write of one shared count word.
   Appends to DIFFERENT keys do not commute — two interleaved appends
   read the same count, write the same slot, and lose one record — so
   declaring its mutations shard-local is a lie the explorer must
   catch, and serialising them (restructures = true) must make the very
   same code pass the same sweep. *)
module Toy_log = struct
  type t = { pool : Pmem.t }

  let hdr = 64 (* first alloc on a fresh pool; recover relies on it *)
  let rec_size = 64
  let max_recs = 192
  let slot i = hdr + 8 + (i * rec_size)
  let log_len t = Int64.to_int (Pmem.get_u64 t.pool hdr)

  let create pool =
    let base = Pmem.alloc pool (8 + (max_recs * rec_size)) in
    assert (base = hdr);
    Pmem.set_u64 pool hdr 0L;
    Pmem.persist pool ~off:hdr ~len:8;
    { pool }

  let recover pool = { pool }

  let append t ~tag ~key ~value =
    let n = log_len t in
    if n >= max_recs then failwith "toy: log full";
    let off = slot n in
    Pmem.set_u8 t.pool off tag;
    Pmem.set_u8 t.pool (off + 1) (String.length key);
    Pmem.set_string t.pool ~off:(off + 2) key;
    Pmem.set_u8 t.pool (off + 28) (String.length value);
    if value <> "" then Pmem.set_string t.pool ~off:(off + 29) value;
    Pmem.persist t.pool ~off ~len:rec_size;
    (* a second persist of the record widens the window between the
       count read above and the count bump below: more yield points for
       the explorer's scheduler to interleave a racing append into *)
    Pmem.persist t.pool ~off ~len:rec_size;
    Pmem.set_u64 t.pool hdr (Int64.of_int (n + 1));
    Pmem.persist t.pool ~off:hdr ~len:8

  let replay t =
    let m = ref SMap.empty in
    for i = 0 to log_len t - 1 do
      let off = slot i in
      let klen = Pmem.get_u8 t.pool (off + 1) in
      let key = Pmem.get_string t.pool ~off:(off + 2) ~len:klen in
      if Pmem.get_u8 t.pool off = 2 then m := SMap.remove key !m
      else
        let vlen = Pmem.get_u8 t.pool (off + 28) in
        m :=
          SMap.add key (Pmem.get_string t.pool ~off:(off + 29) ~len:vlen) !m
    done;
    !m

  let insert t ~key ~value = append t ~tag:1 ~key ~value
  let search t k = SMap.find_opt k (replay t)

  let update t ~key ~value =
    if SMap.mem key (replay t) then (
      append t ~tag:1 ~key ~value;
      true)
    else false

  let delete t k =
    if SMap.mem k (replay t) then (
      append t ~tag:2 ~key:k ~value:"";
      true)
    else false

  let range t ~lo ~hi f =
    SMap.iter (fun k v -> if k >= lo && k <= hi then f k v) (replay t)

  let iter t f = SMap.iter f (replay t)
  let count t = SMap.cardinal (replay t)
  let dram_bytes _ = 0
  let pm_bytes t = 8 + (log_len t * rec_size)

  let check_integrity ~recovered:_ t =
    let n = log_len t in
    if n < 0 || n > max_recs then failwith "toy: count out of range";
    for i = 0 to n - 1 do
      let off = slot i in
      let tag = Pmem.get_u8 t.pool off in
      if tag <> 1 && tag <> 2 then failwith "toy: bad record tag";
      if Pmem.get_u8 t.pool (off + 1) > 26 then failwith "toy: bad key length"
    done
end

(* The lie: per-key shards, nothing restructures — claims appends to
   distinct keys commute when every append races on the count word. *)
module Toy_bad = struct
  include Toy_log

  let name = "toy-bad"
  let stripe_of_key _ key = Hashtbl.hash key
  let volatile_domain_safe = true
  let restructures _ ~op:_ ~key:_ = false
end

(* The honest classification of the same code: every mutation reshapes
   shared structure, so all of them serialise on the structure lock. *)
module Toy_good = struct
  include Toy_log

  let name = "toy-good"
  let stripe_of_key _ _ = 0
  let volatile_domain_safe = false
  let restructures _ ~op:_ ~key:_ = true
end

module Toy_bad_mt = Hart_core.Striped_mt.Make (Toy_bad)
module Toy_good_mt = Hart_core.Striped_mt.Make (Toy_good)

let toy_scripts ~domains ~ops_per_domain =
  Array.init domains (fun d ->
      List.init ops_per_domain (fun j ->
          Hart_fault.Fault.Insert
            (Printf.sprintf "t%c-%02d" (Char.chr (Char.code 'a' + d)) j,
             Printf.sprintf "v%d.%d" d j)))

(* The explorer's crash-free dry run checks the quiesced state against
   the fire-order linearization model, so the lost update surfaces as a
   Violation before any crash is even injected. *)
let test_toy_bad_rejected () =
  let target = Hart_fault.Fault_mt.of_mt (module Toy_bad_mt) in
  let scripts = toy_scripts ~domains:2 ~ops_per_domain:4 in
  let caught = ref 0 in
  for seed = 1 to 5 do
    match
      Hart_fault.Fault_mt.explore ~target ~seed:(Int64.of_int seed) ~domains:2
        ~workload:"toy-bad" scripts
    with
    | _ -> ()
    | exception Hart_fault.Fault.Violation _ -> incr caught
  done;
  Alcotest.(check bool)
    "non-commuting shard claim rejected by the oracle" true (!caught > 0)

(* Same index, honest metadata: the full sweep must pass. *)
let test_toy_good_passes () =
  let target = Hart_fault.Fault_mt.of_mt (module Toy_good_mt) in
  let scripts = toy_scripts ~domains:2 ~ops_per_domain:4 in
  let r =
    Hart_fault.Fault_mt.explore ~target ~seed:3L ~domains:2
      ~workload:"toy-good" scripts
  in
  Alcotest.(check bool) "swept some flush boundaries" true (r.total_flushes > 0);
  Alcotest.(check int) "full coverage" r.total_flushes r.schedules;
  Alcotest.(check int) "no violations" 0 (List.length r.violations);
  Alcotest.(check bool)
    "serialised mutations never overlap" true
    (r.max_in_flight <= 1)

(* ------------------------------------------------------------------ *)
(* WORT's sharpened [restructures]: leaf-local value updates — and
   upserts landing on existing keys — ride the stripe path instead of
   the exclusive structure lock, so an update-heavy workload on
   distinct prefixes genuinely overlaps at crash points, and the full
   sweep still passes the linearization-set oracle. *)

let test_wort_update_commute () =
  let prefixes = [ "wa"; "wb" ] in
  let setup =
    List.concat_map
      (fun p ->
        List.init 3 (fun j ->
            Hart_fault.Fault.Insert (Printf.sprintf "%s-%02d" p j, "s0")))
      prefixes
  in
  let scripts =
    Array.of_list
      (List.map
         (fun p ->
           List.concat
             (List.init 3 (fun j ->
                  let key = Printf.sprintf "%s-%02d" p j in
                  [
                    Hart_fault.Fault.Update (key, Printf.sprintf "u%d" j);
                    (* upsert onto an existing key: an update in WORT *)
                    Hart_fault.Fault.Insert (key, Printf.sprintf "w%d" j);
                  ])))
         prefixes)
  in
  let r =
    Hart_fault.Fault_mt.explore ~target:Hart_fault.Fault_mt.wort_mt ~seed:7L
      ~domains:2 ~workload:"wort-update" ~setup scripts
  in
  Alcotest.(check bool) "swept some flush boundaries" true (r.total_flushes > 0);
  Alcotest.(check int) "no violations" 0 (List.length r.violations);
  Alcotest.(check bool) "updates overlap (commute on WORT)" true
    (r.max_in_flight >= 2)

(* New-key inserts still restructure: single-domain scripts with fresh
   keys must serialise on the structure lock, never overlapping. *)
let test_wort_insert_serializes () =
  let scripts =
    Array.init 2 (fun d ->
        List.init 3 (fun j ->
            Hart_fault.Fault.Insert
              (Printf.sprintf "w%c-%02d" (Char.chr (Char.code 'p' + d)) j, "v")))
  in
  let r =
    Hart_fault.Fault_mt.explore ~target:Hart_fault.Fault_mt.wort_mt ~seed:9L
      ~domains:2 ~workload:"wort-insert" scripts
  in
  Alcotest.(check int) "no violations" 0 (List.length r.violations);
  Alcotest.(check bool) "structural inserts never overlap" true
    (r.max_in_flight <= 1)

(* ------------------------------------------------------------------ *)
(* apply_batch: stripe-grouped writes vs a Map oracle                  *)

(* Semantics: per-op results in submission order (Bset always true,
   Bdel reports presence), per-key order preserved even when grouping
   reorders across stripes. *)
let test_apply_batch_semantics () =
  let module I = Hart_core.Index_intf in
  let t = fresh_mt () in
  let rng = Rng.create 2024L in
  let oracle = ref SMap.empty in
  for round = 0 to 19 do
    let ops =
      List.init 200 (fun i ->
          let k = Printf.sprintf "bk%04d" (Rng.int rng 300) in
          if Rng.int rng 4 = 0 then I.Bdel k
          else I.Bset (k, Printf.sprintf "r%d.%d" round i))
    in
    let expected =
      List.map
        (fun op ->
          match op with
          | I.Bset (k, v) ->
              oracle := SMap.add k v !oracle;
              true
          | I.Bdel k ->
              let present = SMap.mem k !oracle in
              oracle := SMap.remove k !oracle;
              present)
        ops
    in
    let res = Hart_mt.apply_batch t ops in
    Alcotest.(check (array bool))
      (Printf.sprintf "round %d results" round)
      (Array.of_list expected) res
  done;
  SMap.iter
    (fun k v ->
      Alcotest.(check (option string)) ("final " ^ k) (Some v)
        (Hart_mt.search t k))
    !oracle;
  Alcotest.(check int) "final count" (SMap.cardinal !oracle)
    (Hart.count (Hart_mt.underlying t))

(* Domains batching over disjoint key prefixes: the merged oracles must
   equal the final tree, same discipline as the stress tests. *)
let test_apply_batch_parallel () =
  let module I = Hart_core.Index_intf in
  let t = fresh_mt () in
  let domains = 4 in
  let per_domain d =
    let rng = Rng.create (Int64.of_int (7000 + d)) in
    let oracle = ref SMap.empty in
    for round = 0 to 9 do
      let ops =
        List.init 250 (fun i ->
            let k = Printf.sprintf "d%d.%04d" d (Rng.int rng 400) in
            if Rng.int rng 5 = 0 then I.Bdel k
            else I.Bset (k, Printf.sprintf "v%d.%d.%d" d round i))
      in
      List.iter
        (fun op ->
          match op with
          | I.Bset (k, v) -> oracle := SMap.add k v !oracle
          | I.Bdel k -> oracle := SMap.remove k !oracle)
        ops;
      ignore (Hart_mt.apply_batch t ops : bool array)
    done;
    !oracle
  in
  let workers = Array.init domains (fun d -> Domain.spawn (fun () -> per_domain d)) in
  let oracles = Array.map Domain.join workers in
  let merged =
    Array.fold_left (SMap.union (fun _ _ v -> Some v)) SMap.empty oracles
  in
  SMap.iter
    (fun k v ->
      Alcotest.(check (option string)) ("merged " ^ k) (Some v)
        (Hart_mt.search t k))
    merged;
  Alcotest.(check int) "merged count" (SMap.cardinal merged)
    (Hart.count (Hart_mt.underlying t));
  Hart.check_integrity (Hart_mt.underlying t)

(* ------------------------------------------------------------------ *)
(* apply_batch × crash: enumerate a crash at every flush boundary of
   one batch — mid-stripe-group — and assert the recovered image is an
   admissible commit point: every op whose [Mt_hook.fire_batch] ran is
   durably applied, the one op between [batch_start] and [fire_batch]
   is atomically present or absent, nothing else moved, and per-key
   the committed ops form a prefix of submission order. *)

let batch_crash_pool () =
  Pmem.create ~capacity:(1 lsl 21) ~max_capacity:(1 lsl 22)
    (Meter.create Latency.c300_100)

let test_apply_batch_crash_boundaries () =
  let module I = Hart_core.Index_intf in
  let setup = [ ("a1", "a0"); ("c1", "c0"); ("a2", "x0") ] in
  (* repeated keys so per-key order is observable; delete-then-reinsert
     of c1; spread across prefixes so stripe grouping reorders ops *)
  let ops =
    [
      I.Bset ("a1", "A1");
      I.Bset ("b1", "B1");
      I.Bset ("a1", "A2");
      I.Bdel "c1";
      I.Bset ("c2", "C2");
      I.Bset ("b1", "B2");
      I.Bdel "a2";
      I.Bset ("c1", "C3");
      I.Bset ("b2", "B3");
    ]
  in
  let opsa = Array.of_list ops in
  let key_of = function I.Bset (k, _) -> k | I.Bdel k -> k in
  let apply_one m = function
    | I.Bset (k, v) -> SMap.add k v m
    | I.Bdel k -> SMap.remove k m
  in
  let base =
    List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty setup
  in
  let fresh () =
    let pool = batch_crash_pool () in
    let t = Hart_mt.create pool in
    List.iter (fun (k, v) -> Hart_mt.insert t ~key:k ~value:v) setup;
    (pool, t)
  in
  (* dry run: census the batch's flush boundaries and check the
     crash-free endpoint *)
  let pool, t = fresh () in
  let f0 = Pmem.flush_count pool in
  ignore (Hart_mt.apply_batch t ops : bool array);
  let boundaries = Pmem.flush_count pool - f0 in
  Alcotest.(check bool) "batch flushes" true (boundaries > 0);
  let full = List.fold_left apply_one base ops in
  let dump t =
    let m = ref SMap.empty in
    Hart.iter (Hart_mt.underlying t) (fun k v -> m := SMap.add k v !m);
    !m
  in
  Alcotest.(check bool) "dry run reaches the full model" true
    (SMap.equal String.equal full (dump t));
  let in_flight_seen = ref 0 in
  let mode_of = function
    | 0 -> Pmem.Clean
    | i -> Pmem.Torn { seed = Int64.of_int (900 + i); fraction = 0.5 }
  in
  List.iter
    (fun mode_ix ->
      for i = 0 to boundaries - 1 do
        let pool, t = fresh () in
        let fired = ref [] in
        let started = ref None in
        Hart_core.Mt_hook.install_batch
          ~start:(fun j -> started := Some j)
          ~commit:(fun j ->
            started := None;
            fired := j :: !fired);
        Pmem.arm_crash ~mode:(mode_of mode_ix) pool ~after_flushes:i;
        (match Hart_mt.apply_batch t ops with
        | (_ : bool array) ->
            Alcotest.failf "crash %d/%d did not fire" i boundaries
        | exception Hart_pmem.Pmem.Crash_injected -> ());
        Hart_core.Mt_hook.uninstall_batch ();
        let fired_l = List.rev !fired in
        if !started <> None then incr in_flight_seen;
        (* recovery on the (possibly torn) durable image *)
        let t2 = Hart_mt.recover pool in
        Hart.check_integrity (Hart_mt.underlying t2);
        let got = dump t2 in
        let committed =
          List.fold_left (fun m j -> apply_one m opsa.(j)) base fired_l
        in
        let admissible =
          SMap.equal String.equal got committed
          || match !started with
             | None -> false
             | Some j ->
                 SMap.equal String.equal got (apply_one committed opsa.(j))
        in
        if not admissible then
          Alcotest.failf
            "crash %d (mode %d): recovered state is not an admissible \
             commit point (%d committed, in-flight %s)"
            i mode_ix (List.length fired_l)
            (match !started with
            | None -> "none"
            | Some j -> key_of opsa.(j));
        (* per-key: committed ops are a submission-order prefix *)
        List.iter
          (fun k ->
            let on_k = List.filter (fun j -> key_of opsa.(j) = k) in
            let subm = on_k (List.init (Array.length opsa) Fun.id) in
            let comm = on_k fired_l in
            let rec prefix = function
              | [], _ -> true
              | c :: cs, s :: ss when c = s -> prefix (cs, ss)
              | _ -> false
            in
            if not (prefix (comm, subm)) then
              Alcotest.failf
                "crash %d (mode %d): commits on %s are not a \
                 submission-order prefix" i mode_ix k)
          [ "a1"; "b1"; "c1"; "c2"; "a2"; "b2" ]
      done)
    [ 0; 1 ];
  Alcotest.(check bool) "some crashes landed mid-op (in flight)" true
    (!in_flight_seen > 0)

let () =
  Alcotest.run "multi-domain"
    [
      ( "stress",
        [
          Alcotest.test_case "partitioned differential (1e5 ops)" `Slow
            test_stress_partitioned;
          Alcotest.test_case "with racing foreign reads (1e5 ops)" `Slow
            test_stress_foreign_reads;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "writer preference" `Quick
            test_rwlock_writer_preference;
          Alcotest.test_case "no starvation, no lost updates" `Quick
            test_rwlock_no_starvation;
        ] );
      ( "hash_dir",
        [
          Alcotest.test_case "lock-free readers vs remover" `Quick
            test_hash_dir_readers_vs_remover;
        ] );
      ( "epalloc",
        [
          Alcotest.test_case "concurrent alloc/commit/free" `Quick
            test_epalloc_concurrent;
          Alcotest.test_case "delete-churn recycler storm" `Quick
            test_recycler_churn_storm;
        ] );
      ( "striped_functor",
        [
          Alcotest.test_case "oracle rejects a non-commuting toy index" `Quick
            test_toy_bad_rejected;
          Alcotest.test_case "wort: updates commute on stripes" `Quick
            test_wort_update_commute;
          Alcotest.test_case "wort: new-key inserts serialise" `Quick
            test_wort_insert_serializes;
          Alcotest.test_case "same toy index passes when serialised" `Quick
            test_toy_good_passes;
        ] );
      ( "apply_batch",
        [
          Alcotest.test_case "results and per-key order vs oracle" `Quick
            test_apply_batch_semantics;
          Alcotest.test_case "4 domains, disjoint prefixes" `Quick
            test_apply_batch_parallel;
          Alcotest.test_case "crash at every flush boundary" `Quick
            test_apply_batch_crash_boundaries;
        ] );
    ]
