(* Multi-domain tests: the concurrency layer under real [Domain.spawn]
   parallelism — a differential stress against per-domain Map oracles,
   the Rwlock admission protocol (writer preference, no reader
   starvation), lock-free Hash_dir reads racing a remover, and
   concurrent EPallocator traffic.

   The stress tests partition the keyspace: each domain owns its keys
   and is the only writer of them, so each domain's oracle is exact and
   the merged oracle must equal the final tree. Cross-domain searches
   race by design and only assert well-formedness. *)

module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Pmem = Hart_pmem.Pmem
module Rng = Hart_util.Rng
module Chunk = Hart_core.Chunk
module Epalloc = Hart_core.Epalloc
module Hash_dir = Hart_core.Hash_dir
module Hart = Hart_core.Hart
module Hart_mt = Hart_core.Hart_mt
module Rwlock = Hart_core.Rwlock
module SMap = Map.Make (String)

(* pre-sized so [Pmem.grow] never fires while domains run (growth swaps
   the backing buffers; multi-domain pools must be pre-sized) *)
let fresh_mt () =
  let pool =
    Pmem.create ~capacity:(1 lsl 26) ~max_capacity:(1 lsl 27)
      (Meter.create Latency.c300_100)
  in
  Hart_mt.create pool

(* ------------------------------------------------------------------ *)
(* Differential stress: N domains of random ops vs per-domain oracles  *)

let n_domains = 4
let ops_per_domain = 25_000 (* 4 x 25k = 1e5 ops minimum, per ISSUE *)

let stress_once ~seed ~with_foreign_reads =
  let t = fresh_mt () in
  let keys_per_domain = 2_000 in
  let key d i = Printf.sprintf "k%d_%04d" d i in
  let oracles =
    Array.init n_domains (fun d ->
        ignore d;
        ref SMap.empty)
  in
  (* Worker-side assertions must not go through [Alcotest.check]: its
     success-path logging formats through a shared [Format] state,
     which is not domain-safe (racing workers can crash the pretty-
     printer's internal queue). Raise a plain exception instead —
     built with [Printf], which allocates nothing shared — and let the
     joining main domain report it. *)
  let require cond fmt = Printf.ksprintf (fun s -> if not cond then failwith s) fmt in
  let worker d () =
    let rng = Rng.create (Int64.of_int (seed + d)) in
    let oracle = oracles.(d) in
    for _ = 1 to ops_per_domain do
      let k = key d (Rng.int rng keys_per_domain) in
      match Rng.int rng (if with_foreign_reads then 5 else 4) with
      | 0 ->
          let v = Printf.sprintf "v%d" (Rng.int rng 1_000_000) in
          Hart_mt.insert t ~key:k ~value:v;
          oracle := SMap.add k v !oracle
      | 1 ->
          let v = Printf.sprintf "u%d" (Rng.int rng 1_000_000) in
          let updated = Hart_mt.update t ~key:k ~value:v in
          require
            (updated = SMap.mem k !oracle)
            "update of %s hit=%b disagrees with oracle" k updated;
          if updated then oracle := SMap.add k v !oracle
      | 2 ->
          let deleted = Hart_mt.delete t k in
          require
            (deleted = SMap.mem k !oracle)
            "delete of %s hit=%b disagrees with oracle" k deleted;
          oracle := SMap.remove k !oracle
      | 3 ->
          let got = Hart_mt.search t k in
          require
            (got = SMap.find_opt k !oracle)
            "search of %s disagrees with owner oracle" k
      | _ ->
          (* foreign read: races with the owner, only well-formedness *)
          let other = (d + 1 + Rng.int rng (n_domains - 1)) mod n_domains in
          let fk = key other (Rng.int rng keys_per_domain) in
          (match Hart_mt.search t fk with
          | None -> ()
          | Some v ->
              require
                (String.length v > 0 && (v.[0] = 'v' || v.[0] = 'u'))
                "foreign read returned garbage %S" v)
    done
  in
  let domains =
    Array.init (n_domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
  in
  worker 0 ();
  Array.iter Domain.join domains;
  (* merged oracle must equal the quiesced tree exactly *)
  let merged =
    Array.fold_left
      (fun acc o -> SMap.union (fun _ _ _ -> assert false) acc !o)
      SMap.empty oracles
  in
  let hart = Hart_mt.underlying t in
  Hart.check_integrity hart;
  let dumped = ref SMap.empty in
  Hart.iter hart (fun k v -> dumped := SMap.add k v !dumped);
  Alcotest.(check int) "count matches oracle" (SMap.cardinal merged)
    (Hart_mt.count t);
  Alcotest.(check (list (pair string string)))
    "bindings match merged oracle" (SMap.bindings merged)
    (SMap.bindings !dumped)

let test_stress_partitioned () = stress_once ~seed:42 ~with_foreign_reads:false
let test_stress_foreign_reads () = stress_once ~seed:1337 ~with_foreign_reads:true

(* ------------------------------------------------------------------ *)
(* Rwlock admission protocol                                           *)

(* While a writer waits, incoming readers must block (writer
   preference); once the writer exits, the blocked readers must all get
   in (no starvation). *)
let test_rwlock_writer_preference () =
  let l = Rwlock.create () in
  let writer_in = Atomic.make false and reader2_in = Atomic.make false in
  Rwlock.read_lock l;
  let writer =
    Domain.spawn (fun () ->
        Rwlock.write_lock l;
        Atomic.set writer_in true;
        Unix.sleepf 0.05;
        Rwlock.write_unlock l)
  in
  (* give the writer time to queue up on the held read lock *)
  Unix.sleepf 0.05;
  Alcotest.(check bool) "writer blocked by reader" false (Atomic.get writer_in);
  let reader2 =
    Domain.spawn (fun () ->
        Rwlock.read_lock l;
        Atomic.set reader2_in true;
        (* the waiting writer must have been admitted first *)
        let writer_went_first = Atomic.get writer_in in
        Rwlock.read_unlock l;
        writer_went_first)
  in
  Unix.sleepf 0.05;
  Alcotest.(check bool)
    "late reader blocked while writer waits" false (Atomic.get reader2_in);
  Rwlock.read_unlock l;
  Domain.join writer;
  Alcotest.(check bool)
    "writer admitted before the late reader" true (Domain.join reader2);
  Alcotest.(check bool) "late reader admitted after writer exit" true
    (Atomic.get reader2_in)

(* Hammer the lock from reader and writer domains; every reader must
   complete (no starvation) and the protected counter must show no lost
   updates (mutual exclusion). *)
let test_rwlock_no_starvation () =
  let l = Rwlock.create () in
  let shared = ref 0 in
  let n_writers = 2 and n_readers = 4 and rounds = 2_000 in
  let reads_done = Atomic.make 0 in
  let writers =
    Array.init n_writers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              Rwlock.with_write l (fun () -> incr shared)
            done))
  in
  let readers =
    Array.init n_readers (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to rounds do
              Rwlock.with_read l (fun () ->
                  let v = !shared in
                  if v < 0 || v > n_writers * rounds then
                    Alcotest.failf "torn counter read %d" v);
              Atomic.incr reads_done
            done))
  in
  Array.iter Domain.join writers;
  Array.iter Domain.join readers;
  Alcotest.(check int) "no lost writer updates" (n_writers * rounds) !shared;
  Alcotest.(check int)
    "every reader round completed" (n_readers * rounds)
    (Atomic.get reads_done);
  Alcotest.(check int) "lock drained" 0 (Rwlock.readers l);
  Alcotest.(check bool) "no writer left" false (Rwlock.writer_active l)

(* ------------------------------------------------------------------ *)
(* Hash_dir: lock-free readers racing inserts and backward-shift       *)
(* removes                                                             *)

let test_hash_dir_readers_vs_remover () =
  let d = Hash_dir.create ~initial_buckets:64 () in
  let n_keys = 200 in
  let key i = Printf.sprintf "hk%03d" i in
  for i = 0 to (n_keys / 2) - 1 do
    Hash_dir.insert d (key i) i
  done;
  let stop = Atomic.make false in
  let readers =
    Array.init 2 (fun r ->
        Domain.spawn (fun () ->
            let rng = Rng.create (Int64.of_int (7 + r)) in
            let n = ref 0 in
            while not (Atomic.get stop) do
              let i = Rng.int rng n_keys in
              (match Hash_dir.find d (key i) with
              | None -> ()
              | Some v ->
                  if v <> i then
                    Alcotest.failf "reader saw %d under key %d" v i);
              incr n
            done;
            !n))
  in
  (* single writer: grow past several resizes, then churn removes and
     re-inserts so readers cross many backward-shift windows *)
  for i = n_keys / 2 to n_keys - 1 do
    Hash_dir.insert d (key i) i
  done;
  let rng = Rng.create 99L in
  for _ = 1 to 20_000 do
    let i = Rng.int rng n_keys in
    if Rng.int rng 2 = 0 then Hash_dir.remove d (key i)
    else Hash_dir.insert d (key i) i
  done;
  Atomic.set stop true;
  let reads = Array.fold_left (fun acc r -> acc + Domain.join r) 0 readers in
  Alcotest.(check bool) "readers made progress" true (reads > 0);
  Hash_dir.check_invariants d

(* ------------------------------------------------------------------ *)
(* EPallocator: concurrent alloc/commit/free traffic                   *)

let test_epalloc_concurrent () =
  let pool =
    Pmem.create ~capacity:(1 lsl 24) ~max_capacity:(1 lsl 25)
      (Meter.create Latency.c300_100)
  in
  let ep = Epalloc.create pool in
  let per_domain = 3_000 in
  let worker d () =
    let rng = Rng.create (Int64.of_int (100 + d)) in
    let held = ref [] in
    for _ = 1 to per_domain do
      if Rng.int rng 3 < 2 || !held = [] then begin
        (* allocate and commit a value object *)
        let cls = if Rng.int rng 2 = 0 then Chunk.Val8 else Chunk.Val16 in
        let obj = Epalloc.epmalloc ep cls in
        Epalloc.set_obj_bit ep cls ~obj;
        held := (cls, obj) :: !held
      end
      else begin
        match !held with
        | (cls, obj) :: rest ->
            held := rest;
            Epalloc.reset_obj_bit ep cls ~obj;
            (* opportunistic recycling is safe on any chunk *)
            if Rng.int rng 8 = 0 then
              Epalloc.eprecycle ep cls ~chunk:(Epalloc.chunk_of_obj ep cls obj)
        | [] -> ()
      end
    done;
    List.length !held
  in
  let domains =
    Array.init (n_domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
  in
  let held0 = worker 0 () in
  let held_rest = Array.fold_left (fun a d -> a + Domain.join d) 0 domains in
  Epalloc.check_invariants ep;
  let live =
    Epalloc.live_objects ep Chunk.Val8 + Epalloc.live_objects ep Chunk.Val16
  in
  Alcotest.(check int) "live objects = committed minus freed"
    (held0 + held_rest) live

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "multi-domain"
    [
      ( "stress",
        [
          Alcotest.test_case "partitioned differential (1e5 ops)" `Slow
            test_stress_partitioned;
          Alcotest.test_case "with racing foreign reads (1e5 ops)" `Slow
            test_stress_foreign_reads;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "writer preference" `Quick
            test_rwlock_writer_preference;
          Alcotest.test_case "no starvation, no lost updates" `Quick
            test_rwlock_no_starvation;
        ] );
      ( "hash_dir",
        [
          Alcotest.test_case "lock-free readers vs remover" `Quick
            test_hash_dir_readers_vs_remover;
        ] );
      ( "epalloc",
        [
          Alcotest.test_case "concurrent alloc/commit/free" `Quick
            test_epalloc_concurrent;
        ] );
    ]
