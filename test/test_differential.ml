(* Property-based differential testing: random operation sequences are
   applied simultaneously to each persistent index and to a pure OCaml
   [Map] oracle; every observable result (search, update/delete return
   values, count, range contents) must agree, and each structure's own
   integrity check must pass at regular intervals.

   Keys are drawn from a deliberately tiny alphabet with lengths from 1
   to [Leaf.max_key_len], so sequences constantly revisit keys, share
   prefixes, straddle HART's hash-key boundary (kh = 2) and exercise
   both hash-key-only keys (len <= kh, empty ART key) and deep ART
   paths. *)

module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Pmem = Hart_pmem.Pmem
module Hart = Hart_core.Hart
module B = Hart_baselines
module SMap = Map.Make (String)

type dop =
  | Insert of string * string
  | Update of string * string
  | Delete of string
  | Search of string
  | Range of string * string
  | Count

let pp_dop = function
  | Insert (k, v) -> Printf.sprintf "Insert(%S,%S)" k v
  | Update (k, v) -> Printf.sprintf "Update(%S,%S)" k v
  | Delete k -> Printf.sprintf "Delete(%S)" k
  | Search k -> Printf.sprintf "Search(%S)" k
  | Range (lo, hi) -> Printf.sprintf "Range(%S,%S)" lo hi
  | Count -> "Count"

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let key_gen =
  QCheck.Gen.(
    int_range 1 Hart_core.Leaf.max_key_len >>= fun len ->
    string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (return len))

let value_gen =
  QCheck.Gen.(
    int_range 0 31 >>= fun len ->
    string_size ~gen:(char_range 'A' 'Z') (return len))

let dop_gen =
  QCheck.Gen.(
    frequency
      [
        (8, map2 (fun k v -> Insert (k, v)) key_gen value_gen);
        (3, map2 (fun k v -> Update (k, v)) key_gen value_gen);
        (4, map (fun k -> Delete k) key_gen);
        (3, map (fun k -> Search k) key_gen);
        ( 1,
          map2
            (fun a b -> if a <= b then Range (a, b) else Range (b, a))
            key_gen key_gen );
        (1, return Count);
      ])

let print_dops ops = String.concat "; " (List.map pp_dop ops)

let dops_arb =
  QCheck.make
    ~print:print_dops
    ~shrink:QCheck.Shrink.(list ?shrink:None)
    QCheck.Gen.(list_size (int_range 1 160) dop_gen)

(* ------------------------------------------------------------------ *)
(* Targets: every index in the repo, driven through Index_intf.ops      *)

let fresh_pool () =
  Pmem.create ~capacity:(1 lsl 21)
    (Meter.create ~llc_bytes:(1 lsl 16) Latency.c300_100)

let targets :
    (string * (unit -> B.Index_intf.ops * (unit -> unit))) list =
  [
    ( "hart",
      fun () ->
        let h = Hart.create (fresh_pool ()) in
        (B.Hart_index.ops h, fun () -> Hart.check_integrity h) );
    ( "woart",
      fun () ->
        let t = B.Woart.create (fresh_pool ()) in
        (B.Woart.ops t, fun () -> ()) );
    ( "art_cow",
      fun () ->
        let t = B.Art_cow.create (fresh_pool ()) in
        (B.Art_cow.ops t, fun () -> ()) );
    ( "wort",
      fun () ->
        let t = B.Wort.create (fresh_pool ()) in
        (B.Wort.ops t, fun () -> B.Wort.check_invariants t) );
    ( "fptree",
      fun () ->
        let t = B.Fptree.create (fresh_pool ()) in
        (B.Fptree.ops t, fun () -> B.Fptree.check_integrity t) );
    ( "nv_tree",
      fun () ->
        let t = B.Nv_tree.create (fresh_pool ()) in
        (B.Nv_tree.ops t, fun () -> B.Nv_tree.check_integrity t) );
    ( "wb_tree",
      fun () ->
        let t = B.Wb_tree.create (fresh_pool ()) in
        (B.Wb_tree.ops t, fun () -> B.Wb_tree.check_integrity t) );
    ( "cdds_btree",
      fun () ->
        let t = B.Cdds_btree.create (fresh_pool ()) in
        (B.Cdds_btree.ops t, fun () -> B.Cdds_btree.check_integrity t) );
  ]

let max_key = String.make Hart_core.Leaf.max_key_len '\xff'

let collect_range (ops : B.Index_intf.ops) ~lo ~hi =
  let acc = ref [] in
  ops.B.Index_intf.range ~lo ~hi (fun k v -> acc := (k, v) :: !acc);
  (* in-leaf order is unspecified for some structures; compare as sets *)
  List.sort compare !acc

let oracle_range m ~lo ~hi =
  SMap.bindings (SMap.filter (fun k _ -> lo <= k && k <= hi) m)

let run_differential name make ops_list =
  let ops, check = make () in
  let oracle = ref SMap.empty in
  let failf step op fmt =
    Printf.ksprintf
      (fun s ->
        QCheck.Test.fail_reportf "%s: op %d (%s): %s" name step (pp_dop op) s)
      fmt
  in
  List.iteri
    (fun step op ->
      (match op with
      | Insert (k, v) ->
          ops.B.Index_intf.insert ~key:k ~value:v;
          oracle := SMap.add k v !oracle
      | Update (k, v) ->
          let hit = ops.B.Index_intf.update ~key:k ~value:v in
          if hit <> SMap.mem k !oracle then
            failf step op "update returned %b, oracle has-key %b" hit
              (SMap.mem k !oracle);
          if hit then oracle := SMap.add k v !oracle
      | Delete k ->
          let hit = ops.B.Index_intf.delete k in
          if hit <> SMap.mem k !oracle then
            failf step op "delete returned %b, oracle has-key %b" hit
              (SMap.mem k !oracle);
          oracle := SMap.remove k !oracle
      | Search k ->
          let got = ops.B.Index_intf.search k
          and want = SMap.find_opt k !oracle in
          if got <> want then
            failf step op "search: got %s, oracle %s"
              (match got with Some v -> Printf.sprintf "%S" v | None -> "None")
              (match want with Some v -> Printf.sprintf "%S" v | None -> "None")
      | Range (lo, hi) ->
          if collect_range ops ~lo ~hi <> oracle_range !oracle ~lo ~hi then
            failf step op "range contents diverge from oracle"
      | Count ->
          let got = ops.B.Index_intf.count ()
          and want = SMap.cardinal !oracle in
          if got <> want then failf step op "count: got %d, oracle %d" got want);
      if (step + 1) mod 16 = 0 then
        try check ()
        with Failure msg -> failf step op "integrity: %s" msg)
    ops_list;
  (try check ()
   with Failure msg -> QCheck.Test.fail_reportf "%s: final integrity: %s" name msg);
  let final = collect_range ops ~lo:"" ~hi:max_key in
  if final <> SMap.bindings !oracle then
    QCheck.Test.fail_reportf
      "%s: final contents diverge from oracle (%d vs %d bindings)" name
      (List.length final)
      (SMap.cardinal !oracle);
  if ops.B.Index_intf.count () <> SMap.cardinal !oracle then
    QCheck.Test.fail_reportf "%s: final count diverges from oracle" name;
  true

let differential_tests =
  List.map
    (fun (name, make) ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~count:25 ~name:("differential " ^ name) dops_arb
           (run_differential name make)))
    targets

(* A deterministic dense sequence as a fast regression anchor: every key
   length from 1 to max on a shared prefix, inserted, updated, half
   deleted, against every target. *)
let dense_ladder name make () =
  let ops, check = make () in
  let keys =
    List.init Hart_core.Leaf.max_key_len (fun i -> String.make (i + 1) 'a')
  in
  let oracle = ref SMap.empty in
  List.iter
    (fun k ->
      ops.B.Index_intf.insert ~key:k ~value:k;
      oracle := SMap.add k k !oracle)
    keys;
  List.iter
    (fun k ->
      assert (ops.B.Index_intf.update ~key:k ~value:(k ^ "!"));
      oracle := SMap.add k (k ^ "!") !oracle)
    keys;
  List.iteri
    (fun i k ->
      if i mod 2 = 0 then begin
        assert (ops.B.Index_intf.delete k);
        oracle := SMap.remove k !oracle
      end)
    keys;
  check ();
  Alcotest.(check (list (pair string string)))
    (name ^ ": ladder contents")
    (SMap.bindings !oracle)
    (collect_range ops ~lo:"" ~hi:max_key)

let ladder_tests =
  List.map
    (fun (name, make) ->
      Alcotest.test_case ("ladder " ^ name) `Quick (dense_ladder name make))
    targets

(* ------------------------------------------------------------------ *)
(* Variable-length and composite application keys through encode_key    *)

(* Application-layer keys run 0 to [Keygen.max_app_key_len] bytes; the
   indexes only accept 1-24. [Keygen.encode_key] bridges the gap:
   identity for native keys, ['\xfe'] + fingerprint for everything else
   (including the empty string and reserved-prefix keys). These tests
   drive every index through that encoding against a Map oracle keyed by
   the *application* key, so a fingerprint collision or any
   encode/decode asymmetry shows up as an oracle divergence.

   Range is deliberately absent: the fingerprint encoding is not
   order-preserving past 24 bytes, so ordered iteration over encoded
   keys is not an application-level guarantee. Final contents are still
   compared exhaustively by mapping the oracle through [encode_key]. *)

module Keygen = Hart_workloads.Keygen

let app_key_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return 0);
        (5, int_range 1 24);
        (3, int_range 25 96);
        (1, return Keygen.max_app_key_len);
      ]
    >>= fun len ->
    (* include '\xfe' so reserved-prefix short keys are generated *)
    string_size ~gen:(oneofl [ 'a'; 'b'; '\xfe' ]) (return len))

let composite_key_gen =
  QCheck.Gen.(
    map3
      (fun t u o -> Keygen.composite_key ~tenant:t ~user:u ~obj:o)
      (int_range 0 3) (int_range 0 9) (int_range 0 30))

let vkey_gen = QCheck.Gen.(frequency [ (3, app_key_gen); (1, composite_key_gen) ])

let vop_gen =
  QCheck.Gen.(
    frequency
      [
        (8, map2 (fun k v -> Insert (k, v)) vkey_gen value_gen);
        (3, map2 (fun k v -> Update (k, v)) vkey_gen value_gen);
        (4, map (fun k -> Delete k) vkey_gen);
        (4, map (fun k -> Search k) vkey_gen);
        (1, return Count);
      ])

let vops_arb =
  QCheck.make ~print:print_dops
    ~shrink:QCheck.Shrink.(list ?shrink:None)
    QCheck.Gen.(list_size (int_range 1 160) vop_gen)

let run_varlen name make ops_list =
  let ops, check = make () in
  let oracle = ref SMap.empty in
  let failf step op fmt =
    Printf.ksprintf
      (fun s ->
        QCheck.Test.fail_reportf "%s: op %d (%s): %s" name step (pp_dop op) s)
      fmt
  in
  List.iteri
    (fun step op ->
      (match op with
      | Insert (k, v) ->
          ops.B.Index_intf.insert ~key:(Keygen.encode_key k) ~value:v;
          oracle := SMap.add k v !oracle
      | Update (k, v) ->
          let hit = ops.B.Index_intf.update ~key:(Keygen.encode_key k) ~value:v in
          if hit <> SMap.mem k !oracle then
            failf step op "update returned %b, oracle has-key %b" hit
              (SMap.mem k !oracle);
          if hit then oracle := SMap.add k v !oracle
      | Delete k ->
          let hit = ops.B.Index_intf.delete (Keygen.encode_key k) in
          if hit <> SMap.mem k !oracle then
            failf step op "delete returned %b, oracle has-key %b" hit
              (SMap.mem k !oracle);
          oracle := SMap.remove k !oracle
      | Search k ->
          let got = ops.B.Index_intf.search (Keygen.encode_key k)
          and want = SMap.find_opt k !oracle in
          if got <> want then
            failf step op "search: got %s, oracle %s"
              (match got with Some v -> Printf.sprintf "%S" v | None -> "None")
              (match want with Some v -> Printf.sprintf "%S" v | None -> "None")
      | Range _ -> (* not generated: encoding is not order-preserving *) ()
      | Count ->
          let got = ops.B.Index_intf.count ()
          and want = SMap.cardinal !oracle in
          if got <> want then failf step op "count: got %d, oracle %d" got want);
      if (step + 1) mod 16 = 0 then
        try check ()
        with Failure msg -> failf step op "integrity: %s" msg)
    ops_list;
  (try check ()
   with Failure msg ->
     QCheck.Test.fail_reportf "%s: final integrity: %s" name msg);
  let final = collect_range ops ~lo:"" ~hi:max_key in
  let want =
    List.sort compare
      (List.map (fun (k, v) -> (Keygen.encode_key k, v)) (SMap.bindings !oracle))
  in
  if final <> want then
    QCheck.Test.fail_reportf
      "%s: final encoded contents diverge from oracle (%d vs %d bindings)" name
      (List.length final) (List.length want);
  true

let varlen_tests =
  List.map
    (fun (name, make) ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~count:25 ~name:("varlen " ^ name) vops_arb
           (run_varlen name make)))
    targets

(* Deterministic boundary anchor: [Keygen.app_varlen_keys] always leads
   with lengths 0, 1, 24, 25 and 4096, so this exercises the empty
   string, both sides of the identity/fingerprint boundary and the
   longest supported application key against every index. *)
let varlen_ladder name make () =
  let ops, check = make () in
  let keys = Array.to_list (Keygen.app_varlen_keys 64) in
  assert (List.mem "" keys);
  assert (List.exists (fun k -> String.length k = Keygen.max_app_key_len) keys);
  let oracle = ref SMap.empty in
  List.iteri
    (fun i k ->
      ops.B.Index_intf.insert ~key:(Keygen.encode_key k)
        ~value:(Keygen.value_for i);
      oracle := SMap.add k (Keygen.value_for i) !oracle)
    keys;
  List.iter
    (fun k ->
      assert (ops.B.Index_intf.update ~key:(Keygen.encode_key k) ~value:"upd!");
      oracle := SMap.add k "upd!" !oracle)
    keys;
  List.iteri
    (fun i k ->
      if i mod 2 = 0 then begin
        assert (ops.B.Index_intf.delete (Keygen.encode_key k));
        oracle := SMap.remove k !oracle
      end)
    keys;
  SMap.iter
    (fun k v ->
      Alcotest.(check (option string))
        (Printf.sprintf "%s: survivor len %d" name (String.length k))
        (Some v)
        (ops.B.Index_intf.search (Keygen.encode_key k)))
    !oracle;
  check ();
  Alcotest.(check int)
    (name ^ ": varlen ladder count")
    (SMap.cardinal !oracle)
    (ops.B.Index_intf.count ())

let varlen_ladder_tests =
  List.map
    (fun (name, make) ->
      Alcotest.test_case ("varlen ladder " ^ name) `Quick
        (varlen_ladder name make))
    targets

let () =
  Alcotest.run "differential"
    [
      ("qcheck", differential_tests);
      ("ladder", ladder_tests);
      ("varlen-qcheck", varlen_tests);
      ("varlen-ladder", varlen_ladder_tests);
    ]
