module Keygen = Hart_workloads.Keygen
module Workload = Hart_workloads.Workload
module Index_intf = Hart_baselines.Index_intf

let distinct keys =
  let h = Hashtbl.create (Array.length keys) in
  Array.for_all
    (fun k ->
      if Hashtbl.mem h k then false
      else begin
        Hashtbl.add h k ();
        true
      end)
    keys

(* ------------------------------------------------------------------ *)
(* Key generators                                                      *)

let test_sequential_ordered () =
  let keys = Keygen.generate Keygen.Sequential 5000 in
  Alcotest.(check int) "count" 5000 (Array.length keys);
  Alcotest.(check bool) "distinct" true (distinct keys);
  for i = 1 to 4999 do
    if not (keys.(i - 1) < keys.(i)) then Alcotest.failf "not ordered at %d" i
  done;
  Array.iter
    (fun k -> Alcotest.(check int) "fixed width" 8 (String.length k))
    keys

let test_sequential_shares_prefixes () =
  let keys = Keygen.generate Keygen.Sequential 100 in
  (* the first 62 keys share the 7-byte prefix: only the last byte moves *)
  let prefix k = String.sub k 0 7 in
  Alcotest.(check string) "stable prefix" (prefix keys.(0)) (prefix keys.(61))

let test_random_properties () =
  let keys = Keygen.generate Keygen.Random 5000 in
  Alcotest.(check bool) "distinct" true (distinct keys);
  Array.iter
    (fun k ->
      let n = String.length k in
      if n < 5 || n > 16 then Alcotest.failf "length %d outside 5..16" n;
      String.iter
        (fun c ->
          let ok =
            (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
            || (c >= '0' && c <= '9')
          in
          if not ok then Alcotest.failf "bad character %C" c)
        k)
    keys

let test_random_deterministic () =
  let a = Keygen.generate ~seed:7L Keygen.Random 1000 in
  let b = Keygen.generate ~seed:7L Keygen.Random 1000 in
  let c = Keygen.generate ~seed:8L Keygen.Random 1000 in
  Alcotest.(check bool) "same seed same keys" true (a = b);
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_dictionary_properties () =
  let keys = Keygen.generate Keygen.Dictionary 20_000 in
  Alcotest.(check bool) "distinct" true (distinct keys);
  Array.iter
    (fun k ->
      let n = String.length k in
      if n < 1 || n > 24 then Alcotest.failf "word length %d outside 1..24" n;
      String.iter
        (fun c -> if not (c >= 'a' && c <= 'z') then Alcotest.failf "bad char %C" c)
        k)
    keys;
  (* first-letter distribution must be skewed like English: the most
     common initial should cover well over 1/26th of the words *)
  let firsts = Array.make 26 0 in
  Array.iter
    (fun k -> firsts.(Char.code k.[0] - Char.code 'a') <- firsts.(Char.code k.[0] - Char.code 'a') + 1)
    keys;
  let top = Array.fold_left max 0 firsts in
  Alcotest.(check bool) "skewed initials" true (top > 20_000 / 26 * 2)

let test_dictionary_universe () =
  Alcotest.(check bool) "supports the paper's 466k words" true
    (Keygen.dictionary_universe >= 466_544);
  Alcotest.(check bool) "overflow rejected" true
    (match Keygen.generate Keygen.Dictionary (Keygen.dictionary_universe + 1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_value_sizes () =
  Alcotest.(check int) "value_for is 7 bytes (Val8 class)" 7
    (String.length (Keygen.value_for 123));
  Alcotest.(check int) "wide_value_for is 15 bytes (Val16 class)" 15
    (String.length (Keygen.wide_value_for 123))

let test_spec_names () =
  List.iter
    (fun spec ->
      match Keygen.of_name (Keygen.name spec) with
      | Some s -> Alcotest.(check string) "roundtrip" (Keygen.name spec) (Keygen.name s)
      | None -> Alcotest.fail "name roundtrip failed")
    Keygen.all;
  Alcotest.(check bool) "unknown rejected" true (Keygen.of_name "zipf" = None)

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)

let test_basic_traces () =
  let keys = Keygen.generate Keygen.Random 500 in
  let ins = Workload.insert_trace keys Keygen.value_for in
  Alcotest.(check int) "one insert per key" 500 (Array.length ins);
  let sea = Workload.search_trace keys in
  let searched =
    Array.map (function Workload.Search k -> k | _ -> Alcotest.fail "not a search") sea
  in
  Alcotest.(check bool) "search covers all keys" true
    (List.sort compare (Array.to_list searched)
    = List.sort compare (Array.to_list keys));
  Alcotest.(check bool) "search order shuffled" true (searched <> keys)

let test_ycsb_mix_ratios () =
  let preloaded = Keygen.generate Keygen.Random 2000 in
  let fresh = Keygen.generate ~seed:99L Keygen.Random 20_000 in
  List.iter
    (fun mix ->
      let n_ops = 20_000 in
      let trace = Workload.ycsb mix ~preloaded ~fresh ~n_ops in
      let i = ref 0 and s = ref 0 and u = ref 0 and d = ref 0 in
      let sc = ref 0 and rm = ref 0 in
      Array.iter
        (function
          | Workload.Insert _ -> incr i
          | Workload.Search _ -> incr s
          | Workload.Update _ -> incr u
          | Workload.Delete _ -> incr d
          | Workload.Scan _ -> incr sc
          | Workload.Rmw _ -> incr rm)
        trace;
      let close pct count =
        abs ((count * 100 / n_ops) - pct) <= 2 (* within 2 points *)
      in
      if not (close mix.Workload.insert_pct !i) then
        Alcotest.failf "%s: insert share %d" mix.Workload.mix_name !i;
      if not (close mix.Workload.search_pct !s) then
        Alcotest.failf "%s: search share %d" mix.Workload.mix_name !s;
      if not (close mix.Workload.update_pct !u) then
        Alcotest.failf "%s: update share %d" mix.Workload.mix_name !u;
      if not (close mix.Workload.delete_pct !d) then
        Alcotest.failf "%s: delete share %d" mix.Workload.mix_name !d;
      if not (close mix.Workload.scan_pct !sc) then
        Alcotest.failf "%s: scan share %d" mix.Workload.mix_name !sc;
      if not (close mix.Workload.rmw_pct !rm) then
        Alcotest.failf "%s: rmw share %d" mix.Workload.mix_name !rm)
    (Workload.mixes @ List.map fst Workload.ycsb_standard)

let test_ycsb_uniform_coverage () =
  let preloaded = Keygen.generate Keygen.Random 100 in
  let fresh = Keygen.generate ~seed:99L Keygen.Random 1 in
  let trace = Workload.ycsb Workload.read_modified_write ~preloaded ~fresh ~n_ops:10_000 in
  let seen = Hashtbl.create 128 in
  Array.iter
    (function
      | Workload.Search k | Workload.Update (k, _) -> Hashtbl.replace seen k ()
      | Workload.Insert _ | Workload.Delete _ | Workload.Scan _ | Workload.Rmw _
        -> ())
    trace;
  Alcotest.(check bool) "uniform distribution touches every record" true
    (Hashtbl.length seen = 100)

let test_ycsb_validation () =
  let preloaded = Keygen.generate Keygen.Random 100 in
  Alcotest.(check bool) "too few fresh keys rejected" true
    (match
       Workload.ycsb Workload.write_intensive ~preloaded ~fresh:[||] ~n_ops:1000
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "empty preload rejected" true
    (match
       Workload.ycsb Workload.read_intensive ~preloaded:[||]
         ~fresh:(Keygen.generate Keygen.Random 1000) ~n_ops:1000
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_zipf_sampler_shape () =
  let rng = Hart_util.Rng.create 0x21FL in
  let sample = Workload.zipf_sampler rng ~n:1000 ~s:0.99 in
  let counts = Array.make 1000 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let k = sample () in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 1000);
    counts.(k) <- counts.(k) + 1
  done;
  (* rank 0 must dominate: ~1/H_1000 = 13% of mass at s=0.99 *)
  Alcotest.(check bool)
    (Printf.sprintf "head heavy (rank0=%d)" counts.(0))
    true
    (counts.(0) > draws / 20);
  Alcotest.(check bool) "monotone-ish head" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "tail thin" true (counts.(999) < counts.(0) / 10)

let test_zipf_sampler_validation () =
  let rng = Hart_util.Rng.create 1L in
  Alcotest.(check bool) "empty support rejected" true
    (match Workload.zipf_sampler rng ~n:0 ~s:1.0 () with
    | (_ : int) -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad exponent rejected" true
    (match Workload.zipf_sampler rng ~n:10 ~s:(-1.0) () with
    | (_ : int) -> false
    | exception Invalid_argument _ -> true)

let test_ycsb_zipfian_skew () =
  let preloaded = Keygen.generate Keygen.Random 1000 in
  let fresh = Keygen.generate ~seed:99L Keygen.Random 1 in
  let trace =
    Workload.ycsb ~dist:(Workload.Zipfian 0.99) Workload.read_modified_write
      ~preloaded ~fresh ~n_ops:20_000
  in
  let counts = Hashtbl.create 128 in
  Array.iter
    (function
      | Workload.Search k | Workload.Update (k, _) ->
          Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0)
      | Workload.Insert _ | Workload.Delete _ | Workload.Scan _ | Workload.Rmw _
        -> ())
    trace;
  let top =
    Hashtbl.fold (fun _ c acc -> max acc c) counts 0
  in
  (* uniform would give ~20 per key; zipf must concentrate far more *)
  Alcotest.(check bool)
    (Printf.sprintf "hottest key hit %d times" top)
    true (top > 200)

(* ------------------------------------------------------------------ *)
(* Determinism pins: the first 32 draws of every request distribution,
   per seed, rendered compactly and compared against literals. The ycsb
   generator splits its root seed into independent op/key/length
   streams precisely so these stay stable; if any future change shifts
   a stream, this test names the exact distribution and seed that
   drifted. Regenerate the literals with
   [PIN_DUMP=1 dune exec test/test_workloads.exe]. *)

let render_op = function
  | Workload.Insert (k, _) -> "I:" ^ k
  | Workload.Search k -> "S:" ^ k
  | Workload.Update (k, _) -> "U:" ^ k
  | Workload.Delete k -> "D:" ^ k
  | Workload.Scan (k, len) -> Printf.sprintf "C:%s:%d" k len
  | Workload.Rmw (k, _) -> "M:" ^ k

(* every op class present, so all three rng streams are consumed *)
let pin_mix =
  {
    Workload.mix_name = "pin";
    insert_pct = 10;
    search_pct = 30;
    update_pct = 20;
    delete_pct = 10;
    scan_pct = 20;
    rmw_pct = 10;
  }

let pin_trace ?seed dist =
  let preloaded = Array.init 40 (Printf.sprintf "p%02d") in
  let fresh = Array.init 20 (Printf.sprintf "f%02d") in
  let trace =
    Workload.ycsb ?seed ~dist ~scan_max:9 pin_mix ~preloaded ~fresh ~n_ops:32
  in
  String.concat " " (Array.to_list (Array.map render_op trace))

let pin_cases =
  [
    ("uniform/default", None, Workload.Uniform);
    ("uniform/seed7", Some 7L, Workload.Uniform);
    ("zipf99/default", None, Workload.Zipfian 0.99);
    ("zipf99/seed7", Some 7L, Workload.Zipfian 0.99);
    ("latest99/default", None, Workload.Latest 0.99);
    ("latest99/seed7", Some 7L, Workload.Latest 0.99);
    ("hotspot/default", None, Workload.Hotspot { hot_fraction = 0.2; hot_prob = 0.8 });
    ("hotspot/seed7", Some 7L, Workload.Hotspot { hot_fraction = 0.2; hot_prob = 0.8 });
  ]

let pinned_draws =
  [
    ("uniform/default", "C:p00:6 D:p05 U:p17 M:p17 I:f00 U:p30 M:p35 S:p10 S:p23 U:p15 D:p05 S:p29 C:p35:6 S:p12 U:p15 C:p29:4 S:p13 U:p32 S:p09 U:p22 U:p32 D:p11 C:p08:6 I:f01 S:p36 S:p02 U:p28 S:p15 C:p31:4 S:p32 C:p14:3 C:p25:6");
    ("uniform/seed7", "I:f00 U:p09 I:f01 S:p00 D:p36 D:p08 U:p27 U:p31 S:p06 M:p31 C:p20:8 C:p35:3 I:f02 S:p29 S:p32 U:p18 I:f03 M:p38 U:p02 S:p02 S:p39 S:p23 S:p24 U:p03 C:p01:1 U:p10 S:p00 U:p24 S:p07 D:p27 S:p03 U:p39");
    ("zipf99/default", "C:p24:6 D:p01 U:p26 M:p14 I:f00 U:p09 M:p09 S:p01 S:p02 U:p01 D:p09 S:p15 C:p07:6 S:p00 U:p00 C:p00:4 S:p00 U:p00 S:p29 U:p08 U:p00 D:p00 C:p00:6 I:f01 S:p00 S:p02 U:p04 S:p24 C:p05:4 S:p39 C:p04:3 C:p34:6");
    ("zipf99/seed7", "I:f00 U:p04 I:f01 S:p13 D:p26 D:p21 U:p01 U:p04 S:p12 M:p00 C:p00:8 C:p00:3 I:f02 S:p01 S:p19 U:p03 I:f03 M:p35 U:p00 S:p11 S:p15 S:p00 S:p22 U:p00 C:p13:1 U:p32 S:p09 U:p01 S:p04 D:p10 S:p00 U:p00");
    ("latest99/default", "C:p04:6 D:p38 U:p00 M:p20 I:f00 U:p28 M:p28 S:p39 S:p37 U:p39 D:p29 S:p18 C:p30:6 S:f00 U:f00 C:f00:4 S:f00 U:f00 S:p29 U:f00 U:f00 D:f00 C:f00:6 I:f01 S:p39 S:p35 U:p06 S:p35 C:p36:4 S:p35 C:p38:3 C:p13:6");
    ("latest99/seed7", "I:f00 U:p35 I:f01 S:p23 D:p03 D:p12 U:p39 U:p36 S:p24 M:f01 C:f01:8 C:f01:3 I:f02 S:f00 S:p15 U:p38 I:f03 M:f03 U:p28 S:p22 S:f03 S:p12 S:f03 U:p25 C:p31:1 U:f02 S:p38 U:p29 S:f03 D:f03 S:f02 U:p05");
    ("hotspot/default", "C:p37:6 D:p09 U:p03 M:p07 I:f00 U:p05 M:p03 S:p07 S:p05 U:p01 D:p00 S:p00 C:p02:6 S:p07 U:p00 C:p01:4 S:p03 U:p26 S:p02 U:p00 U:p05 D:p03 C:p04:6 I:f01 S:p04 S:p06 U:p20 S:p01 C:p01:4 S:p07 C:p06:3 C:p21:6");
    ("hotspot/seed7", "I:f00 U:p00 I:f01 S:p24 D:p07 D:p07 U:p03 U:p00 S:p06 M:p02 C:p07:8 C:p35:3 I:f02 S:p02 S:p00 U:p03 I:f03 M:p07 U:p05 S:p04 S:p01 S:p05 S:p03 U:p23 C:p03:1 U:p20 S:p06 U:p01 S:p23 D:p01 S:p28 U:p14");
  ]

let () =
  if Sys.getenv_opt "PIN_DUMP" <> None then begin
    List.iter
      (fun (label, seed, dist) ->
        Printf.printf "    (%S, %S);\n" label (pin_trace ?seed dist))
      pin_cases;
    exit 0
  end

let test_pinned_draws () =
  List.iter
    (fun (label, seed, dist) ->
      match List.assoc_opt label pinned_draws with
      | None -> Alcotest.failf "no pinned literal for %s" label
      | Some expected ->
          Alcotest.(check string) label expected (pin_trace ?seed dist))
    pin_cases

let test_stream_independence () =
  (* changing scan_max only consumes the length stream differently: the
     op sequence and every key drawn must stay identical *)
  let preloaded = Keygen.generate Keygen.Random 300 in
  let fresh = Keygen.generate ~seed:99L Keygen.Random 100 in
  let strip = function
    | Workload.Scan (k, _) -> Workload.Scan (k, 0)
    | op -> op
  in
  let trace sm =
    Array.map strip
      (Workload.ycsb ~dist:(Workload.Zipfian 0.99) ~scan_max:sm pin_mix
         ~preloaded ~fresh ~n_ops:600)
  in
  Alcotest.(check bool) "keys independent of scan_max" true
    (trace 5 = trace 500)

let test_scan_lengths_bounded () =
  let preloaded = Keygen.generate Keygen.Random 100 in
  let fresh = Keygen.generate ~seed:99L Keygen.Random 200 in
  let scan_max = 13 in
  let trace =
    Workload.ycsb ~scan_max Workload.ycsb_e ~preloaded ~fresh ~n_ops:2000
  in
  Array.iter
    (function
      | Workload.Scan (_, len) ->
          if len < 1 || len > scan_max then
            Alcotest.failf "scan length %d outside 1..%d" len scan_max
      | _ -> ())
    trace;
  Alcotest.(check bool) "scan_max 0 rejected" true
    (match
       Workload.ycsb ~scan_max:0 Workload.ycsb_e ~preloaded ~fresh ~n_ops:10
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_latest_skew_recency () =
  let n_pre = 500 in
  let preloaded = Array.init n_pre (Printf.sprintf "pre%04d") in
  let fresh = Array.init 200 (Printf.sprintf "new%04d") in
  let trace =
    Workload.ycsb ~dist:(Workload.Latest 0.99) Workload.ycsb_d ~preloaded
      ~fresh ~n_ops:4000
  in
  let total = ref 0 and recent = ref 0 and on_fresh = ref 0 in
  let is_recent k =
    (* the most recent tenth of the preload, or any freshly inserted key *)
    if String.length k >= 3 && String.sub k 0 3 = "new" then begin
      incr on_fresh;
      true
    end
    else Scanf.sscanf k "pre%d" (fun i -> i >= n_pre * 9 / 10)
  in
  Array.iter
    (function
      | Workload.Search k ->
          incr total;
          if is_recent k then incr recent
      | _ -> ())
    trace;
  Alcotest.(check bool)
    (Printf.sprintf "latest mass on recent keys (%d/%d)" !recent !total)
    true
    (!recent * 100 / !total > 40);
  Alcotest.(check bool) "freshly inserted keys get read" true (!on_fresh > 0)

let test_hotspot_proportions () =
  let n_pre = 1000 in
  let preloaded = Array.init n_pre (Printf.sprintf "hs%04d") in
  let fresh = [| "unused" |] in
  let trace =
    Workload.ycsb
      ~dist:(Workload.Hotspot { hot_fraction = 0.2; hot_prob = 0.8 })
      Workload.ycsb_c ~preloaded ~fresh ~n_ops:10_000
  in
  let hot = ref 0 and total = ref 0 in
  Array.iter
    (function
      | Workload.Search k ->
          incr total;
          Scanf.sscanf k "hs%d" (fun i -> if i < n_pre / 5 then incr hot)
      | _ -> ())
    trace;
  let pct = !hot * 100 / !total in
  Alcotest.(check bool)
    (Printf.sprintf "hot set takes ~80%% of requests (got %d%%)" pct)
    true
    (pct >= 75 && pct <= 85);
  Alcotest.(check bool) "hotspot validation" true
    (match
       Workload.ycsb
         ~dist:(Workload.Hotspot { hot_fraction = 0.; hot_prob = 0.5 })
         Workload.ycsb_c ~preloaded ~fresh ~n_ops:10
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_churn_trace_structure () =
  let keys = Array.init 30 (Printf.sprintf "ck%02d") in
  let waves = 2 in
  let trace = Workload.churn_trace ~waves keys Keygen.value_for in
  let n = Array.length keys in
  Alcotest.(check int) "length = (2*waves+1)*n" ((2 * waves) + 1) (Array.length trace / n);
  let sorted_keys = List.sort compare (Array.to_list keys) in
  let wave i =
    List.sort compare
      (Array.to_list (Array.sub trace (i * n) n) |> List.map (function
        | Workload.Insert (k, _) | Workload.Delete k -> k
        | op -> Alcotest.failf "unexpected op %s" (render_op op)))
  in
  for w = 0 to 2 * waves do
    (* every wave covers every key exactly once *)
    Alcotest.(check (list string))
      (Printf.sprintf "wave %d covers all keys" w)
      sorted_keys (wave w);
    let expect_insert = w mod 2 = 0 in
    Array.iter
      (fun op ->
        match (op, expect_insert) with
        | Workload.Insert _, true | Workload.Delete _, false -> ()
        | op, _ ->
            Alcotest.failf "wave %d: unexpected op %s" w (render_op op))
      (Array.sub trace (w * n) n)
  done;
  (* waves are independently shuffled, not replayed *)
  let order i =
    Array.to_list (Array.sub trace (i * n) n) |> List.map render_op
  in
  Alcotest.(check bool) "waves shuffled independently" true (order 0 <> order 2);
  Alcotest.(check bool) "waves must be >= 1" true
    (match Workload.churn_trace ~waves:0 keys Keygen.value_for with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Application-key encoding and generators                             *)

let test_encode_key_identity () =
  (* 1-24-byte keys without the reserved prefix pass through untouched *)
  for len = 1 to 24 do
    let k = String.make len 'q' in
    Alcotest.(check string) (Printf.sprintf "identity len %d" len) k
      (Keygen.encode_key k)
  done

let test_encode_key_fingerprint () =
  let fingerprinted =
    [ ""; String.make 25 'a'; String.make 4096 'x'; "\xfe"; "\xfeshort" ]
  in
  List.iter
    (fun k ->
      let e = Keygen.encode_key k in
      Alcotest.(check int)
        (Printf.sprintf "fingerprint is 24 bytes (app len %d)" (String.length k))
        24 (String.length e);
      Alcotest.(check char) "reserved prefix" '\xfe' e.[0];
      Alcotest.(check string) "deterministic" e (Keygen.encode_key k))
    fingerprinted;
  let encoded = List.map Keygen.encode_key fingerprinted in
  Alcotest.(check int) "no collisions among encodings"
    (List.length encoded)
    (List.length (List.sort_uniq compare encoded))

let test_app_varlen_keys () =
  let keys = Keygen.app_varlen_keys 64 in
  Alcotest.(check bool) "distinct" true (distinct keys);
  let lens = Array.to_list (Array.map String.length keys) in
  List.iter
    (fun boundary ->
      Alcotest.(check bool)
        (Printf.sprintf "boundary length %d present" boundary)
        true (List.mem boundary lens))
    [ 0; 1; 24; 25; Keygen.max_app_key_len ];
  let a = Keygen.app_varlen_keys ~seed:3L 200 in
  let b = Keygen.app_varlen_keys ~seed:3L 200 in
  Alcotest.(check bool) "deterministic per seed" true (a = b);
  let encoded = Array.map Keygen.encode_key a in
  Alcotest.(check bool) "encodings stay distinct" true (distinct encoded);
  Array.iter
    (fun e ->
      let n = String.length e in
      if n < 1 || n > 24 then Alcotest.failf "encoded length %d outside 1..24" n)
    encoded

let test_composite_keys () =
  let k = Keygen.composite_key ~tenant:3 ~user:42 ~obj:12345 in
  Alcotest.(check string) "canonical rendering" "t03:u0042:o00012345" k;
  Alcotest.(check int) "fixed 19-byte width" 19 (String.length k);
  let keys = Keygen.generate Keygen.Composite 5000 in
  Alcotest.(check bool) "distinct" true (distinct keys);
  Array.iter
    (fun k ->
      if String.length k <> 19 then Alcotest.failf "width %d" (String.length k);
      Alcotest.(check string) "native keys encode as themselves" k
        (Keygen.encode_key k))
    keys;
  (* per-field skew: the hottest tenant prefix must dominate *)
  let tenants = Hashtbl.create 16 in
  Array.iter
    (fun k ->
      let t = String.sub k 0 3 in
      Hashtbl.replace tenants t
        (1 + Option.value (Hashtbl.find_opt tenants t) ~default:0))
    keys;
  let top = Hashtbl.fold (fun _ c acc -> max acc c) tenants 0 in
  Alcotest.(check bool)
    (Printf.sprintf "tenant skew (top=%d of 5000)" top)
    true
    (top > 5000 / Hashtbl.length tenants * 2)

let test_apply_counts_hits () =
  let pool = Hart_pmem.Pmem.create (Hart_pmem.Meter.create Hart_pmem.Latency.c300_100) in
  let ops = Hart_baselines.Hart_index.ops (Hart_core.Hart.create pool) in
  let keys = Keygen.generate Keygen.Random 100 in
  let hits = Workload.apply ops (Workload.insert_trace keys Keygen.value_for) in
  Alcotest.(check int) "all inserts counted" 100 hits;
  let hits = Workload.apply ops (Workload.search_trace keys) in
  Alcotest.(check int) "all searches hit" 100 hits;
  let miss_trace = [| Workload.Search "absent-key"; Workload.Delete "nope" |] in
  Alcotest.(check int) "misses not counted" 0 (Workload.apply ops miss_trace)

let () =
  Alcotest.run "workloads"
    [
      ( "keygen",
        [
          Alcotest.test_case "sequential ordered" `Quick test_sequential_ordered;
          Alcotest.test_case "sequential prefixes" `Quick test_sequential_shares_prefixes;
          Alcotest.test_case "random properties" `Quick test_random_properties;
          Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "dictionary properties" `Quick test_dictionary_properties;
          Alcotest.test_case "dictionary universe" `Quick test_dictionary_universe;
          Alcotest.test_case "value sizes" `Quick test_value_sizes;
          Alcotest.test_case "spec names" `Quick test_spec_names;
        ] );
      ( "traces",
        [
          Alcotest.test_case "basic traces" `Quick test_basic_traces;
          Alcotest.test_case "ycsb mix ratios" `Quick test_ycsb_mix_ratios;
          Alcotest.test_case "ycsb uniform coverage" `Quick test_ycsb_uniform_coverage;
          Alcotest.test_case "ycsb validation" `Quick test_ycsb_validation;
          Alcotest.test_case "zipf sampler shape" `Quick test_zipf_sampler_shape;
          Alcotest.test_case "zipf sampler validation" `Quick test_zipf_sampler_validation;
          Alcotest.test_case "ycsb zipfian skew" `Quick test_ycsb_zipfian_skew;
          Alcotest.test_case "apply counts hits" `Quick test_apply_counts_hits;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pinned first draws" `Quick test_pinned_draws;
          Alcotest.test_case "stream independence" `Quick test_stream_independence;
          Alcotest.test_case "scan lengths bounded" `Quick test_scan_lengths_bounded;
          Alcotest.test_case "latest skew recency" `Quick test_latest_skew_recency;
          Alcotest.test_case "hotspot proportions" `Quick test_hotspot_proportions;
          Alcotest.test_case "churn trace structure" `Quick test_churn_trace_structure;
        ] );
      ( "app-keys",
        [
          Alcotest.test_case "encode identity" `Quick test_encode_key_identity;
          Alcotest.test_case "encode fingerprint" `Quick test_encode_key_fingerprint;
          Alcotest.test_case "app varlen keys" `Quick test_app_varlen_keys;
          Alcotest.test_case "composite keys" `Quick test_composite_keys;
        ] );
    ]
