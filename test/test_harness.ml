module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Keygen = Hart_workloads.Keygen
module Workload = Hart_workloads.Workload
module Runner = Hart_harness.Runner
module Mt_sim = Hart_harness.Mt_sim
module Report = Hart_harness.Report
module Rng = Hart_util.Rng

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)

let test_runner_make_all () =
  List.iter
    (fun tree ->
      let inst = Runner.make tree Latency.c300_300 in
      inst.Runner.ops.Hart_baselines.Index_intf.insert ~key:"probe" ~value:"v";
      Alcotest.(check (option string))
        (Runner.tree_name tree ^ " works")
        (Some "v")
        (inst.Runner.ops.Hart_baselines.Index_intf.search "probe"))
    Runner.all_trees

let test_runner_measure () =
  let inst = Runner.make Runner.HART Latency.c300_300 in
  let keys = Keygen.generate Keygen.Random 1000 in
  let m = Runner.measure inst (Workload.insert_trace keys Keygen.value_for) in
  Alcotest.(check int) "op count" 1000 m.Runner.n_ops;
  Alcotest.(check bool) "simulated time advanced" true (m.Runner.sim_ns > 0.);
  Alcotest.(check bool) "avg in a sane band (0.1-100 us)" true
    (Runner.avg_us m > 0.1 && Runner.avg_us m < 100.);
  Alcotest.(check bool) "flush events recorded" true
    (m.Runner.counters.Meter.flushes > 0)

let test_runner_measure_is_delta () =
  let inst = Runner.make Runner.HART Latency.c300_300 in
  let keys = Keygen.generate Keygen.Random 500 in
  Runner.preload inst keys Keygen.value_for;
  let m = Runner.measure inst (Workload.search_trace keys) in
  (* searches flush nothing: the preload's flushes must not leak into
     the measured delta *)
  Alcotest.(check int) "no flushes during search" 0 m.Runner.counters.Meter.flushes

let test_runner_names () =
  List.iter
    (fun tree ->
      match Runner.of_tree_name (Runner.tree_name tree) with
      | Some t ->
          Alcotest.(check string) "roundtrip" (Runner.tree_name tree)
            (Runner.tree_name t)
      | None -> Alcotest.fail "tree name roundtrip")
    Runner.all_trees

(* ------------------------------------------------------------------ *)
(* Latency ordering: the simulated clock must respect the configs      *)

let test_latency_monotone () =
  let avg config =
    let inst = Runner.make Runner.HART config in
    let keys = Keygen.generate Keygen.Random 2000 in
    Runner.avg_us (Runner.measure inst (Workload.insert_trace keys Keygen.value_for))
  in
  let a = avg Latency.c300_100 and b = avg Latency.c300_300 and c = avg Latency.c600_300 in
  Alcotest.(check bool)
    (Printf.sprintf "300/100 (%.2f) <= 300/300 (%.2f) < 600/300 (%.2f)" a b c)
    true
    (a <= b && b < c)

(* ------------------------------------------------------------------ *)
(* Mt_sim                                                              *)

let uniform_trace ~arts ~n ~write seed =
  let rng = Rng.create seed in
  Array.init n (fun _ -> (Rng.int rng arts, write))

let test_mt_sim_single_thread_baseline () =
  let trace = uniform_trace ~arts:1000 ~n:50_000 ~write:true 1L in
  let miops = Mt_sim.simulate ~threads:1 ~trace ~svc_ns:1000. () in
  (* 1000 ns/op single-threaded = 1 MIOPS exactly *)
  Alcotest.(check bool) "1 MIOPS" true (abs_float (miops -. 1.0) < 0.01)

let test_mt_sim_scales_with_many_arts () =
  let trace = uniform_trace ~arts:4000 ~n:100_000 ~write:true 2L in
  let m1 = Mt_sim.simulate ~threads:1 ~trace ~svc_ns:1000. () in
  let m2 = Mt_sim.simulate ~threads:2 ~trace ~svc_ns:1000. () in
  let m8 = Mt_sim.simulate ~threads:8 ~trace ~svc_ns:1000. () in
  let s2 = m2 /. m1 and s8 = m8 /. m1 in
  Alcotest.(check bool) (Printf.sprintf "2 threads ~1.9x (%.2f)" s2) true
    (s2 > 1.80 && s2 <= 2.0);
  Alcotest.(check bool) (Printf.sprintf "8 threads ~7x (%.2f)" s8) true
    (s8 > 6.5 && s8 <= 8.0)

let test_mt_sim_ht_tax () =
  let trace = uniform_trace ~arts:4000 ~n:100_000 ~write:true 3L in
  let m1 = Mt_sim.simulate ~threads:1 ~trace ~svc_ns:1000. () in
  let m16 = Mt_sim.simulate ~threads:16 ~trace ~svc_ns:1000. () in
  let s16 = m16 /. m1 in
  (* the paper reports 10.7-11.9x at 16 threads *)
  Alcotest.(check bool) (Printf.sprintf "16 threads ~11x (%.2f)" s16) true
    (s16 > 9.5 && s16 < 13.)

let test_mt_sim_writer_contention () =
  (* all writes on ONE art cannot scale *)
  let trace = uniform_trace ~arts:1 ~n:20_000 ~write:true 4L in
  let m1 = Mt_sim.simulate ~threads:1 ~trace ~svc_ns:1000. () in
  let m8 = Mt_sim.simulate ~threads:8 ~trace ~svc_ns:1000. () in
  Alcotest.(check bool) "serialised writers do not scale" true (m8 /. m1 < 1.1)

let test_mt_sim_readers_share () =
  (* reads on ONE art still scale: readers share the lock *)
  let trace = uniform_trace ~arts:1 ~n:20_000 ~write:false 5L in
  let m1 = Mt_sim.simulate ~threads:1 ~trace ~svc_ns:1000. () in
  let m8 = Mt_sim.simulate ~threads:8 ~trace ~svc_ns:1000. () in
  Alcotest.(check bool) "shared readers scale" true (m8 /. m1 > 6.)

let test_mt_sim_validation () =
  Alcotest.(check bool) "0 threads rejected" true
    (match Mt_sim.simulate ~threads:0 ~trace:[||] ~svc_ns:1. () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Report                                                              *)

let test_report_ratio () =
  Alcotest.(check (float 1e-9)) "2x" 2.0 (Report.ratio 4.0 2.0);
  Alcotest.(check (float 1e-9)) "degenerate" 0.0 (Report.ratio 0.0 2.0);
  Alcotest.(check string) "formatting" "1.235" (Report.fmt_f 1.23456)

(* ------------------------------------------------------------------ *)
(* End-to-end smoke: the experiment drivers run at a tiny scale        *)

let with_captured_stdout f =
  let saved = Unix.dup Unix.stdout in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 null Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close null)
    f

let test_experiments_smoke () =
  with_captured_stdout (fun () ->
      Hart_harness.Exp_mixed.run ~scale:0.02;
      Hart_harness.Exp_range.run ~scale:0.02;
      Hart_harness.Exp_memory.run ~scale:0.02;
      Hart_harness.Exp_recovery.run ~scale:0.02;
      Hart_harness.Exp_scalability.run ~scale:0.02;
      Hart_harness.Exp_ablation.run ~scale:0.02)

(* ------------------------------------------------------------------ *)
(* Cross-index mixed-workload plan generator (Exp_parallel.mix_plan)   *)

module Exp_parallel = Hart_harness.Exp_parallel

let plan_counts plan =
  Array.fold_left
    (fun (i, u, d) (kind, _) ->
      match kind with
      | Exp_parallel.Mix_insert -> (i + 1, u, d)
      | Exp_parallel.Mix_update -> (i, u + 1, d)
      | Exp_parallel.Mix_delete -> (i, u, d + 1))
    (0, 0, 0) plan

let test_mix_plan_deterministic () =
  let mk () = Exp_parallel.mix_plan ~seed:7L ~n:100 ~ops:500 () in
  Alcotest.(check bool) "same seed, same plan" true (mk () = mk ());
  Alcotest.(check bool) "different seed, different plan" true
    (mk () <> Exp_parallel.mix_plan ~seed:8L ~n:100 ~ops:500 ());
  let zk () = Exp_parallel.mix_plan ~zipf:true ~seed:7L ~n:100 ~ops:500 () in
  Alcotest.(check bool) "zipf plan deterministic too" true (zk () = zk ())

let test_mix_plan_proportions () =
  let plan = Exp_parallel.mix_plan ~seed:42L ~n:1000 ~ops:10_000 () in
  let i, u, d = plan_counts plan in
  Alcotest.(check int) "every op classified" 10_000 (i + u + d);
  (* 25/50/25 within a generous tolerance *)
  let within label lo hi x =
    Alcotest.(check bool)
      (Printf.sprintf "%s count %d in [%d,%d]" label x lo hi)
      true
      (x >= lo && x <= hi)
  in
  within "insert" 2_000 3_000 i;
  within "update" 4_500 5_500 u;
  within "delete" 2_000 3_000 d;
  Array.iter
    (fun (_, ki) ->
      Alcotest.(check bool) "key index in range" true (ki >= 0 && ki < 1000))
    plan

let test_mix_plan_zipf_skew () =
  let n = 1000 and ops = 10_000 in
  let freq plan =
    let f = Array.make n 0 in
    Array.iter (fun (_, ki) -> f.(ki) <- f.(ki) + 1) plan;
    f
  in
  let uni = freq (Exp_parallel.mix_plan ~seed:42L ~n ~ops ()) in
  let zip = freq (Exp_parallel.mix_plan ~zipf:true ~seed:42L ~n ~ops ()) in
  let top a = Array.fold_left max 0 a in
  (* uniform: ~10 hits per key; Zipf(0.99): the hottest key dominates *)
  Alcotest.(check bool)
    (Printf.sprintf "zipf hottest key (%d) >> uniform hottest (%d)" (top zip)
       (top uni))
    true
    (top zip > 5 * top uni)

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "make all trees" `Quick test_runner_make_all;
          Alcotest.test_case "measure" `Quick test_runner_measure;
          Alcotest.test_case "measure is a delta" `Quick test_runner_measure_is_delta;
          Alcotest.test_case "tree names" `Quick test_runner_names;
          Alcotest.test_case "latency configs order the clock" `Quick test_latency_monotone;
        ] );
      ( "mt_sim",
        [
          Alcotest.test_case "single-thread baseline" `Quick test_mt_sim_single_thread_baseline;
          Alcotest.test_case "scales with many ARTs" `Quick test_mt_sim_scales_with_many_arts;
          Alcotest.test_case "hyper-threading tax" `Quick test_mt_sim_ht_tax;
          Alcotest.test_case "writer contention serialises" `Quick test_mt_sim_writer_contention;
          Alcotest.test_case "readers share" `Quick test_mt_sim_readers_share;
          Alcotest.test_case "validation" `Quick test_mt_sim_validation;
        ] );
      ( "report",
        [ Alcotest.test_case "ratio and formatting" `Quick test_report_ratio ] );
      ( "mix_plan",
        [
          Alcotest.test_case "pure function of the seed" `Quick
            test_mix_plan_deterministic;
          Alcotest.test_case "25/50/25 proportions" `Quick
            test_mix_plan_proportions;
          Alcotest.test_case "zipf skews key popularity" `Quick
            test_mix_plan_zipf_skew;
        ] );
      ( "experiments",
        [ Alcotest.test_case "smoke run all drivers" `Quick test_experiments_smoke ] );
    ]
