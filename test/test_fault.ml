(* Exhaustive crash-schedule exploration (lib/fault): every flush
   boundary of every built-in workload, on HART and FPTree, under clean
   and torn crash modes, including nested crash-during-recovery. *)

module Pmem = Hart_pmem.Pmem
module Fault = Hart_fault.Fault

let find name =
  match Fault.find_workload name with
  | Some w -> w
  | None -> Alcotest.failf "unknown built-in workload %S" name

(* Every schedule must correspond to a distinct dry-run flush boundary:
   schedules = total_flushes proves 100%% coverage (explore itself raises
   if any armed schedule fails to fire). Nested coverage is likewise
   exhaustive over observed recovery flushes — zero for a target whose
   recovery never writes PM (FPTree rebuilds DRAM only, unless it had a
   torn split to repair), so [expect_nested] is per-target. *)
let check_report ?(nested = true) ?(expect_nested = false) r =
  Alcotest.(check bool)
    (Format.asprintf "%a: has flush boundaries" Fault.pp_report r)
    true
    (r.Fault.total_flushes > 0);
  Alcotest.(check int)
    (Format.asprintf "%a: full coverage" Fault.pp_report r)
    r.Fault.total_flushes r.Fault.schedules;
  if nested then begin
    Alcotest.(check int)
      (Format.asprintf "%a: full nested coverage" Fault.pp_report r)
      r.Fault.recovery_flushes r.Fault.nested_schedules;
    if expect_nested then
      Alcotest.(check bool)
        (Format.asprintf "%a: nested schedules ran" Fault.pp_report r)
        true
        (r.Fault.nested_schedules > 0)
  end

let sweep ?mode ?nested ?expect_nested target name () =
  let name, setup, ops = find name in
  let r = Fault.explore ?mode ?nested ~setup ~workload:name target ops in
  check_report ?nested ?expect_nested r

let clean_cases ?expect_nested target =
  List.map
    (fun (name, _, _) ->
      Alcotest.test_case
        (Printf.sprintf "%s/%s clean" target.Fault.target_name name)
        `Quick
        (sweep ?expect_nested target name))
    Fault.builtin_workloads

(* Torn mode is costlier (the eviction subset is re-drawn per schedule),
   so sweep the three light workloads and skip chunk-unlink's hundreds of
   setup ops here; the CLI gate still covers it. *)
let torn_cases target =
  List.concat_map
    (fun (name, _, _) ->
      List.map
        (fun seed ->
          let mode = Pmem.Torn { seed; fraction = 0.5 } in
          Alcotest.test_case
            (Printf.sprintf "%s/%s torn seed=%Ld" target.Fault.target_name name
               seed)
            `Quick
            (sweep ~mode target name))
        [ 7L; 42L ])
    (List.filter
       (fun (n, _, _) -> n <> "chunk-unlink" && n <> "split-chain")
       Fault.builtin_workloads)

(* The split-chain sweep must hit FPTree's torn-split window: some
   schedule crashes between the chain relink and the left bitmap shrink,
   recovery repairs it with a persisted bitmap write, and that write is
   itself nested-crash-swept. *)
let fptree_split_repair () =
  let name, setup, ops = find "split-chain" in
  let r = Fault.explore ~setup ~workload:name Fault.fptree ops in
  check_report ~expect_nested:true r

(* Torn with fraction 1.0 must behave exactly like a clean crash: every
   dirty line evicted = every dirty line durable, which is a state the
   protocol must already tolerate (it cannot rely on lines NOT being
   evicted). *)
let torn_full_eviction target () =
  let name, setup, ops = find "mixed-dense" in
  let r =
    Fault.explore
      ~mode:(Pmem.Torn { seed = 1L; fraction = 1.0 })
      ~nested:false ~setup ~workload:name target ops
  in
  check_report ~nested:false r

let oracle_semantics () =
  let module SMap = Map.Make (String) in
  let m = List.fold_left Fault.apply_model SMap.empty in
  Alcotest.(check (list (pair string string)))
    "insert upserts"
    [ ("a", "2") ]
    (SMap.bindings (m [ Insert ("a", "1"); Insert ("a", "2") ]));
  Alcotest.(check (list (pair string string)))
    "update on absent key is a no-op" []
    (SMap.bindings (m [ Update ("a", "1") ]));
  Alcotest.(check (list (pair string string)))
    "delete removes" []
    (SMap.bindings (m [ Insert ("a", "1"); Delete "a" ]))

(* Checkpointed replay must be invisible: same coverage, same nested
   schedules, same recovery flushes as the full re-execution sweep, with
   at least one schedule actually served from a snapshot. *)
let checkpoint_equivalence target name () =
  let name, setup, ops = find name in
  let full = Fault.explore ~setup ~workload:name target ops in
  let cp = Fault.explore ~setup ~checkpoint_every:30 ~workload:name target ops in
  Alcotest.(check int) "same flush boundaries" full.Fault.total_flushes
    cp.Fault.total_flushes;
  Alcotest.(check int) "same schedules" full.Fault.schedules cp.Fault.schedules;
  Alcotest.(check int) "same nested schedules" full.Fault.nested_schedules
    cp.Fault.nested_schedules;
  Alcotest.(check int) "same recovery flushes" full.Fault.recovery_flushes
    cp.Fault.recovery_flushes;
  Alcotest.(check bool) "snapshots were taken" true (cp.Fault.checkpoints > 0);
  Alcotest.(check bool) "schedules were replayed from snapshots" true
    (cp.Fault.checkpoint_replays > 0)

(* The explorer must actually catch a broken target: a "store" that
   persists nothing recovers to an empty map mid-workload. *)
let detects_violation () =
  let broken =
    {
      Fault.target_name = "broken";
      fresh =
        (fun () ->
          let inner = Fault.hart.Fault.fresh () in
          (* drop every delete: completed ops are then NOT all applied *)
          { inner with apply = (function Fault.Delete _ -> () | op -> inner.apply op) });
      reattach = Fault.hart.Fault.reattach;
    }
  in
  let name, setup, ops = find "delete-recycle" in
  match Fault.explore ~nested:false ~setup ~workload:name broken ops with
  | (_ : Fault.report) -> Alcotest.fail "explorer accepted a broken target"
  | exception Fault.Violation _ -> ()

(* keep_going must complete the sweep and collect every violating
   schedule instead of raising on the first. The tampered target is
   correct crash-free (so the always-fatal dry-run check passes) but its
   recovery silently drops a key — every schedule crashing after that
   key's insert committed is a violation. *)
let keep_going_collects () =
  let tampered =
    {
      Fault.target_name = "tampered";
      fresh = Fault.hart.Fault.fresh;
      reattach =
        (fun pool ->
          let inner = Fault.hart.Fault.reattach pool in
          inner.Fault.apply (Fault.Delete "ab");
          inner);
    }
  in
  let ops =
    [ Fault.Insert ("aa", "1"); Fault.Insert ("ab", "2");
      Fault.Insert ("ac", "3") ]
  in
  let r =
    Fault.explore ~nested:false ~keep_going:true ~workload:"tampered" tampered
      ops
  in
  Alcotest.(check bool) "violations were collected" true
    (List.length r.Fault.violations > 1);
  Alcotest.(check int) "sweep still covered every boundary"
    r.Fault.total_flushes r.Fault.schedules;
  (* a clean target under keep_going collects nothing *)
  let name, setup, ops = find "mixed-dense" in
  let ok =
    Fault.explore ~nested:false ~setup ~keep_going:true ~workload:name
      Fault.hart ops
  in
  Alcotest.(check (list string)) "clean target: no violations" []
    ok.Fault.violations

let () =
  Alcotest.run "fault"
    [
      ("oracle", [ Alcotest.test_case "apply_model" `Quick oracle_semantics ]);
      ("hart-clean", clean_cases ~expect_nested:true Fault.hart);
      ( "fptree-clean",
        clean_cases Fault.fptree
        @ [ Alcotest.test_case "fptree/split-chain repairs torn split" `Quick
              fptree_split_repair ] );
      ("hart-torn", torn_cases Fault.hart);
      ("fptree-torn", torn_cases Fault.fptree);
      ( "torn-full",
        [
          Alcotest.test_case "hart full eviction = clean" `Quick
            (torn_full_eviction Fault.hart);
          Alcotest.test_case "fptree full eviction = clean" `Quick
            (torn_full_eviction Fault.fptree);
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "hart/mixed-dense replay equivalence" `Quick
            (checkpoint_equivalence Fault.hart "mixed-dense");
          Alcotest.test_case "hart/split-chain replay equivalence" `Quick
            (checkpoint_equivalence Fault.hart "split-chain");
          Alcotest.test_case "fptree/split-chain replay equivalence" `Quick
            (checkpoint_equivalence Fault.fptree "split-chain");
        ] );
      ( "meta",
        [
          Alcotest.test_case "detects broken target" `Quick detects_violation;
          Alcotest.test_case "keep-going collects all violations" `Quick
            keep_going_collects;
        ] );
    ]
