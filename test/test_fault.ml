(* Exhaustive crash-schedule exploration (lib/fault): every flush
   boundary of every built-in workload, on HART and FPTree, under clean
   and torn crash modes, including nested crash-during-recovery. *)

module Pmem = Hart_pmem.Pmem
module Fault = Hart_fault.Fault
module Fault_mt = Hart_fault.Fault_mt

let find name =
  match Fault.find_workload name with
  | Some w -> w
  | None -> Alcotest.failf "unknown built-in workload %S" name

(* Every schedule must correspond to a distinct dry-run flush boundary:
   schedules = total_flushes proves 100%% coverage (explore itself raises
   if any armed schedule fails to fire). Nested coverage is likewise
   exhaustive over observed recovery flushes — zero for a target whose
   recovery never writes PM (FPTree rebuilds DRAM only, unless it had a
   torn split to repair), so [expect_nested] is per-target. *)
let check_report ?(nested = true) ?(expect_nested = false) r =
  Alcotest.(check bool)
    (Format.asprintf "%a: has flush boundaries" Fault.pp_report r)
    true
    (r.Fault.total_flushes > 0);
  Alcotest.(check int)
    (Format.asprintf "%a: full coverage" Fault.pp_report r)
    r.Fault.total_flushes r.Fault.schedules;
  if nested then begin
    Alcotest.(check int)
      (Format.asprintf "%a: full nested coverage" Fault.pp_report r)
      r.Fault.recovery_flushes r.Fault.nested_schedules;
    if expect_nested then
      Alcotest.(check bool)
        (Format.asprintf "%a: nested schedules ran" Fault.pp_report r)
        true
        (r.Fault.nested_schedules > 0)
  end

let sweep ?mode ?nested ?expect_nested target name () =
  let name, setup, ops = find name in
  let r = Fault.explore ?mode ?nested ~setup ~workload:name target ops in
  check_report ?nested ?expect_nested r

let clean_cases ?expect_nested target =
  List.map
    (fun (name, _, _) ->
      Alcotest.test_case
        (Printf.sprintf "%s/%s clean" target.Fault.target_name name)
        `Quick
        (sweep ?expect_nested target name))
    Fault.builtin_workloads

(* Torn mode is costlier (the eviction subset is re-drawn per schedule),
   so sweep the three light workloads and skip chunk-unlink's hundreds of
   setup ops here; the CLI gate still covers it. *)
let torn_cases target =
  List.concat_map
    (fun (name, _, _) ->
      List.map
        (fun seed ->
          let mode = Pmem.Torn { seed; fraction = 0.5 } in
          Alcotest.test_case
            (Printf.sprintf "%s/%s torn seed=%Ld" target.Fault.target_name name
               seed)
            `Quick
            (sweep ~mode target name))
        [ 7L; 42L ])
    (List.filter
       (fun (n, _, _) -> n <> "chunk-unlink" && n <> "split-chain")
       Fault.builtin_workloads)

(* The split-chain sweep must hit FPTree's torn-split window: some
   schedule crashes between the chain relink and the left bitmap shrink,
   recovery repairs it with a persisted bitmap write, and that write is
   itself nested-crash-swept. *)
let fptree_split_repair () =
  let name, setup, ops = find "split-chain" in
  let r = Fault.explore ~setup ~workload:name Fault.fptree ops in
  check_report ~expect_nested:true r

(* Torn with fraction 1.0 must behave exactly like a clean crash: every
   dirty line evicted = every dirty line durable, which is a state the
   protocol must already tolerate (it cannot rely on lines NOT being
   evicted). *)
let torn_full_eviction target () =
  let name, setup, ops = find "mixed-dense" in
  let r =
    Fault.explore
      ~mode:(Pmem.Torn { seed = 1L; fraction = 1.0 })
      ~nested:false ~setup ~workload:name target ops
  in
  check_report ~nested:false r

(* Parallel recovery must pass the same clean and torn matrices as the
   serial target, over the same schedule space: the rebuild phase issues
   no flushes, so sweeping with [recover_parallel] as the reattach must
   observe exactly the flush boundaries (outer and nested) that serial
   recovery does. *)
let parallel_recovery_matches_serial_space () =
  let name, setup, ops = find "delete-recycle" in
  let s = Fault.explore ~setup ~workload:name Fault.hart ops in
  let p =
    Fault.explore ~setup ~workload:name
      (Fault.hart_parallel_recovery ~domains:2)
      ops
  in
  Alcotest.(check int) "same flush boundaries" s.Fault.total_flushes
    p.Fault.total_flushes;
  Alcotest.(check int) "same schedules" s.Fault.schedules p.Fault.schedules;
  Alcotest.(check int) "same recovery flushes" s.Fault.recovery_flushes
    p.Fault.recovery_flushes;
  Alcotest.(check int) "same nested schedules" s.Fault.nested_schedules
    p.Fault.nested_schedules

let parallel_recovery_cases =
  let target = Fault.hart_parallel_recovery ~domains:2 in
  clean_cases ~expect_nested:true target
  @ List.map
      (fun name ->
        Alcotest.test_case
          (Printf.sprintf "%s/%s torn seed=7" target.Fault.target_name name)
          `Quick
          (sweep ~mode:(Pmem.Torn { seed = 7L; fraction = 0.5 }) target name))
      [ "update-log"; "mixed-dense" ]
  @ [
      Alcotest.test_case "schedule space matches serial hart" `Quick
        parallel_recovery_matches_serial_space;
    ]

(* Pin HART's crash-schedule space exactly: the ART node-layer rewrite
   (bitmap/pooled DRAM representation, DESIGN.md §14) must not move a
   single flush boundary, because the modelled PM write/flush sequence
   is independent of how the DRAM index represents its children. Any
   drift in these triples means the cost model changed, not just the
   physical layout — which is a fidelity bug this PR's contract
   forbids. *)
let schedule_space_pin () =
  List.iter
    (fun (name, flushes, scheds, nested) ->
      let name, setup, ops = find name in
      let r = Fault.explore ~setup ~workload:name Fault.hart ops in
      Alcotest.(check int)
        (Printf.sprintf "%s: flush boundaries" name)
        flushes r.Fault.total_flushes;
      Alcotest.(check int)
        (Printf.sprintf "%s: schedules" name)
        scheds r.Fault.schedules;
      Alcotest.(check int)
        (Printf.sprintf "%s: nested schedules" name)
        nested r.Fault.nested_schedules)
    [
      ("update-log", 105, 105, 254);
      ("delete-recycle", 82, 82, 130);
      ("mixed-dense", 96, 96, 162);
      ("chunk-unlink", 43, 43, 68);
      ("split-chain", 189, 189, 211);
    ]

let oracle_semantics () =
  let module SMap = Map.Make (String) in
  let m = List.fold_left Fault.apply_model SMap.empty in
  Alcotest.(check (list (pair string string)))
    "insert upserts"
    [ ("a", "2") ]
    (SMap.bindings (m [ Insert ("a", "1"); Insert ("a", "2") ]));
  Alcotest.(check (list (pair string string)))
    "update on absent key is a no-op" []
    (SMap.bindings (m [ Update ("a", "1") ]));
  Alcotest.(check (list (pair string string)))
    "delete removes" []
    (SMap.bindings (m [ Insert ("a", "1"); Delete "a" ]))

(* Checkpointed replay must be invisible: same coverage, same nested
   schedules, same recovery flushes as the full re-execution sweep, with
   at least one schedule actually served from a snapshot. *)
let checkpoint_equivalence target name () =
  let name, setup, ops = find name in
  let full = Fault.explore ~setup ~workload:name target ops in
  let cp = Fault.explore ~setup ~checkpoint_every:30 ~workload:name target ops in
  Alcotest.(check int) "same flush boundaries" full.Fault.total_flushes
    cp.Fault.total_flushes;
  Alcotest.(check int) "same schedules" full.Fault.schedules cp.Fault.schedules;
  Alcotest.(check int) "same nested schedules" full.Fault.nested_schedules
    cp.Fault.nested_schedules;
  Alcotest.(check int) "same recovery flushes" full.Fault.recovery_flushes
    cp.Fault.recovery_flushes;
  Alcotest.(check bool) "snapshots were taken" true (cp.Fault.checkpoints > 0);
  Alcotest.(check bool) "schedules were replayed from snapshots" true
    (cp.Fault.checkpoint_replays > 0)

(* The explorer must actually catch a broken target: a "store" that
   persists nothing recovers to an empty map mid-workload. *)
let detects_violation () =
  let broken =
    {
      Fault.target_name = "broken";
      fresh =
        (fun () ->
          let inner = Fault.hart.Fault.fresh () in
          (* drop every delete: completed ops are then NOT all applied *)
          { inner with apply = (function Fault.Delete _ -> () | op -> inner.apply op) });
      reattach = Fault.hart.Fault.reattach;
      media_mount = None;
    }
  in
  let name, setup, ops = find "delete-recycle" in
  match Fault.explore ~nested:false ~setup ~workload:name broken ops with
  | (_ : Fault.report) -> Alcotest.fail "explorer accepted a broken target"
  | exception Fault.Violation _ -> ()

(* A target that is correct crash-free (so the always-fatal dry-run
   check passes) but whose recovery silently drops a key — every
   schedule crashing after that key's insert committed is a violation.
   Shared by the keep-going and JSON tests. *)
let tampered_target () =
  {
    Fault.target_name = "tampered";
    fresh = Fault.hart.Fault.fresh;
    reattach =
      (fun pool ->
        let inner = Fault.hart.Fault.reattach pool in
        inner.Fault.apply (Fault.Delete "ab");
        inner);
    media_mount = None;
  }

let tampered_ops =
  [ Fault.Insert ("aa", "1"); Fault.Insert ("ab", "2");
    Fault.Insert ("ac", "3") ]

(* keep_going must complete the sweep and collect every violating
   schedule instead of raising on the first. *)
let keep_going_collects () =
  let r =
    Fault.explore ~nested:false ~keep_going:true ~workload:"tampered"
      (tampered_target ()) tampered_ops
  in
  Alcotest.(check bool) "violations were collected" true
    (List.length r.Fault.violations > 1);
  Alcotest.(check int) "sweep still covered every boundary"
    r.Fault.total_flushes r.Fault.schedules;
  (* every collected violation carries exact replay coordinates *)
  List.iter
    (fun v ->
      Alcotest.(check string) "violation names its target" "tampered"
        v.Fault.v_target;
      Alcotest.(check bool) "violation schedule is in range" true
        (v.Fault.v_schedule >= 0 && v.Fault.v_schedule < r.Fault.total_flushes))
    r.Fault.violations;
  (* a clean target under keep_going collects nothing *)
  let name, setup, ops = find "mixed-dense" in
  let ok =
    Fault.explore ~nested:false ~setup ~keep_going:true ~workload:name
      Fault.hart ops
  in
  Alcotest.(check (list string)) "clean target: no violations" []
    (List.map Fault.violation_message ok.Fault.violations)

(* ------------------------------------------------------------------ *)
(* All eight §II indexes as fault targets                              *)

let baseline_targets =
  List.filter
    (fun t ->
      t.Fault.target_name <> "hart" && t.Fault.target_name <> "fptree")
    Fault.all_targets

let all_targets_registered () =
  Alcotest.(check int) "eight targets" 8 (List.length Fault.all_targets);
  List.iter
    (fun t ->
      match Fault.find_target t.Fault.target_name with
      | Some t' ->
          Alcotest.(check string) "find_target round-trip" t.Fault.target_name
            t'.Fault.target_name
      | None -> Alcotest.failf "find_target misses %s" t.Fault.target_name)
    Fault.all_targets;
  Alcotest.(check bool) "unknown name is None" true
    (Fault.find_target "no-such-index" = None)

(* Each baseline gets the same treatment HART and FPTree get above:
   a clean sweep with nested crash-during-recovery coverage and a torn
   sweep, both driving its own [recover] entry point on every
   schedule. *)
let baseline_cases =
  List.concat_map
    (fun t ->
      [
        Alcotest.test_case
          (Printf.sprintf "%s/mixed-dense clean+nested" t.Fault.target_name)
          `Quick
          (sweep t "mixed-dense");
        Alcotest.test_case
          (Printf.sprintf "%s/mixed-dense torn" t.Fault.target_name)
          `Quick
          (sweep ~mode:(Pmem.Torn { seed = 7L; fraction = 0.5 }) t "mixed-dense");
      ])
    baseline_targets

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Media-fault sweep                                                   *)

(* Every target (the crash-gate eight plus checksummed HART) faces the
   same seeded corruption sites; the oracle forbids exactly one thing —
   a silent wrong answer. *)
let media_sweep_target tgt () =
  let name, setup, ops = find "mixed-dense" in
  let r =
    Fault.explore_media ~sites:6 ~keep_going:true ~setup ~workload:name tgt ops
  in
  Alcotest.(check int) "every site ran" 6 (List.length r.Fault.m_sites);
  Alcotest.(check (list string)) "no silent wrong answers" []
    (List.map Fault.violation_message r.Fault.m_violations);
  (* not vacuous: most drawn faults corrupt content the mount must react
     to (only an unwritten stuck line may stay benign) *)
  Alcotest.(check bool) "some sites were non-benign" true
    (List.exists
       (fun s -> s.Fault.site_outcome <> Fault.Media_benign)
       r.Fault.m_sites);
  (* a HART-family mount must have produced findings at some site; a
     baseline never does (it refuses with a typed error instead) *)
  let saw_findings =
    List.exists (fun s -> s.Fault.site_findings > 0) r.Fault.m_sites
  in
  Alcotest.(check bool) "findings match mount capability"
    (tgt.Fault.media_mount <> None)
    saw_findings

(* Determinism: the same (target, seed) re-draws the same faults and
   reaches the same per-site outcomes. *)
let media_sweep_deterministic () =
  let name, setup, ops = find "mixed-dense" in
  let run () =
    let r =
      Fault.explore_media ~sites:4 ~keep_going:true ~setup ~workload:name
        Fault.hart_checksummed ops
    in
    List.map
      (fun s ->
        Printf.sprintf "%d:%s:%s" s.Fault.site_index s.Fault.site_fault
          (Fault.media_outcome_name s.Fault.site_outcome))
      r.Fault.m_sites
  in
  Alcotest.(check (list string)) "replayable" (run ()) (run ())

let media_sweep_roster () =
  Alcotest.(check int) "nine media targets" 9 (List.length Fault.media_targets);
  Alcotest.(check bool) "hart-crc resolvable" true
    (Fault.find_target "hart-crc" <> None);
  (* a HART-family target repairs or quarantines; a baseline only
     detects — both without silent wrong answers *)
  List.iter
    (fun tgt ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mount capability matches family"
           tgt.Fault.target_name)
        (String.length tgt.Fault.target_name >= 4
        && String.sub tgt.Fault.target_name 0 4 = "hart")
        (tgt.Fault.media_mount <> None))
    Fault.media_targets

let media_json () =
  let name, setup, ops = find "update-log" in
  let r =
    Fault.explore_media ~sites:3 ~keep_going:true ~setup ~workload:name
      Fault.hart ops
  in
  let j = Fault.media_reports_json [ r ] in
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "JSON carries %s" sub)
        true (contains ~sub j))
    [
      {|"target":"hart"|}; {|"workload":"update-log"|}; {|"sites":3|};
      {|"outcome":"|}; {|"violations":[]|};
    ];
  Alcotest.(check string) "no violations -> empty baseline" "[]\n"
    (Fault.media_violations_to_json [ r ])

(* ------------------------------------------------------------------ *)
(* Adversarial torn mode                                               *)

let adversarial_sweep () =
  let name, setup, ops = find "update-log" in
  let rs =
    Fault.explore_adversarial ~nested:false ~directed:false ~subsets:2 ~setup
      ~workload:name Fault.hart ops
  in
  Alcotest.(check int) "one commit-point pass + K subset passes" 3
    (List.length rs);
  (match rs with
  | first :: rest ->
      (match first.Fault.mode with
      | Pmem.Torn_commit -> ()
      | _ -> Alcotest.fail "first pass must evict the commit-point line");
      List.iteri
        (fun k r ->
          match r.Fault.mode with
          | Pmem.Torn { seed; _ } ->
              Alcotest.(check int64) "subset seeds are consecutive"
                (Int64.add 0xF417L (Int64.of_int k))
                seed
          | _ -> Alcotest.fail "fallback passes must be random-subset Torn")
        rest
  | [] -> Alcotest.fail "no reports");
  List.iter (fun r -> check_report ~nested:false r) rs

(* Directed mode leads with a clean pass whose every crashed schedule
   is re-run with exactly the lines its recovery reads torn-evicted. *)
let adversarial_directed () =
  let name, setup, ops = find "update-log" in
  let rs =
    Fault.explore_adversarial ~nested:false ~subsets:1 ~setup ~workload:name
      Fault.hart ops
  in
  Alcotest.(check int) "directed + commit-point + 1 subset pass" 3
    (List.length rs);
  (match rs with
  | directed :: commit :: _ ->
      (match directed.Fault.mode with
      | Pmem.Clean -> ()
      | _ -> Alcotest.fail "directed pass sweeps clean crashes");
      Alcotest.(check bool) "directed torn re-runs happened" true
        (directed.Fault.directed_schedules > 0);
      (match commit.Fault.mode with
      | Pmem.Torn_commit -> ()
      | _ -> Alcotest.fail "second pass must evict the commit-point line")
  | _ -> Alcotest.fail "no reports");
  List.iter (fun r -> check_report ~nested:false r) rs

(* ------------------------------------------------------------------ *)
(* Machine-readable violation reports                                  *)

let violation_json () =
  Alcotest.(check string) "empty array diffs clean" "[]\n"
    (Fault.violation_list_json []);
  let r =
    Fault.explore ~nested:false ~keep_going:true ~workload:"tampered"
      (tampered_target ()) tampered_ops
  in
  let j = Fault.violations_to_json [ r ] in
  Alcotest.(check bool) "at least one violation serialized" true
    (List.length r.Fault.violations > 0);
  List.iter
    (fun sub ->
      Alcotest.(check bool)
        (Printf.sprintf "JSON carries %s" sub)
        true (contains ~sub j))
    [
      {|"target":"tampered"|}; {|"workload":"tampered"|}; {|"mode":"clean"|};
      {|"schedule":|}; {|"detail":"|};
    ];
  (* a clean report list serializes to the empty baseline *)
  let name, setup, ops = find "update-log" in
  let ok = Fault.explore ~nested:false ~setup ~workload:name Fault.hart ops in
  Alcotest.(check string) "clean run -> empty baseline" "[]\n"
    (Fault.violations_to_json [ ok ])

(* ------------------------------------------------------------------ *)
(* Concurrent crash explorer (Fault_mt)                                *)

let mt_check_report ?(min_in_flight = 2) r =
  Alcotest.(check bool) "has flush boundaries" true
    (r.Fault_mt.total_flushes > 0);
  Alcotest.(check int) "full coverage" r.Fault_mt.total_flushes
    r.Fault_mt.schedules;
  Alcotest.(check bool)
    (Printf.sprintf "saw >= %d ops in flight at some crash" min_in_flight)
    true
    (r.Fault_mt.max_in_flight >= min_in_flight);
  Alcotest.(check bool) "some schedules crash with >= 2 ops in flight" true
    (r.Fault_mt.multi_in_flight > 0);
  Alcotest.(check int) "no violations" 0 (List.length r.Fault_mt.violations)

let mt_sweep ~domains () =
  let setup, scripts = Fault_mt.default_workload ~domains ~ops_per_domain:4 in
  let r = Fault_mt.explore ~seed:42L ~domains ~workload:"mt-test" ~setup scripts in
  mt_check_report r

let mt_torn_sweep () =
  let setup, scripts = Fault_mt.default_workload ~domains:2 ~ops_per_domain:3 in
  let r =
    Fault_mt.explore
      ~mode:(Pmem.Torn { seed = 5L; fraction = 0.5 })
      ~seed:11L ~domains:2 ~workload:"mt-torn" ~setup scripts
  in
  mt_check_report r

(* The same (seed, schedule) pair must replay bit-identically: committed
   prefix, in-flight set and recovered state all equal. *)
let mt_determinism () =
  let setup, scripts = Fault_mt.default_workload ~domains:3 ~ops_per_domain:4 in
  let p1 = Fault_mt.probe ~seed:7L ~schedule:20 ~setup scripts in
  let p2 = Fault_mt.probe ~seed:7L ~schedule:20 ~setup scripts in
  Alcotest.(check bool) "replay is bit-identical" true (p1 = p2);
  Alcotest.(check bool) "the armed schedule fired" true p1.Fault_mt.p_crashed

let mt_subsample () =
  let setup, scripts = Fault_mt.default_workload ~domains:2 ~ops_per_domain:4 in
  let r =
    Fault_mt.explore ~max_schedules:10 ~seed:42L ~domains:2 ~workload:"mt-sub"
      ~setup scripts
  in
  Alcotest.(check bool) "subsampled below full coverage" true
    (r.Fault_mt.schedules > 0
    && r.Fault_mt.schedules <= 11
    && r.Fault_mt.schedules < r.Fault_mt.total_flushes);
  Alcotest.(check int) "no violations" 0 (List.length r.Fault_mt.violations)

(* The generalised explorer over the other striped front ends: FPTree
   (leaf-group stripes, splits exclusive) and WOART (radix-prefix
   stripes, structural inserts/deletes exclusive). Their mutations
   mostly serialise, so the interesting coverage is the contended
   (waiting-writer) crash points, not multi-in-flight ones. *)
let mt_index_sweep target () =
  let setup, scripts = Fault_mt.default_workload ~domains:2 ~ops_per_domain:4 in
  let r =
    Fault_mt.explore ~target ~seed:42L ~domains:2 ~workload:"mt-test" ~setup
      scripts
  in
  Alcotest.(check bool) "has flush boundaries" true
    (r.Fault_mt.total_flushes > 0);
  Alcotest.(check int) "full coverage" r.Fault_mt.total_flushes
    r.Fault_mt.schedules;
  Alcotest.(check bool) "saw an op in flight at some crash" true
    (r.Fault_mt.max_in_flight >= 1);
  Alcotest.(check bool) "saw contended (waiting-writer) crash points" true
    (r.Fault_mt.contended > 0);
  Alcotest.(check int) "no violations" 0 (List.length r.Fault_mt.violations)

(* Same-stripe collisions on purpose: the sweep must cross crash points
   where a colliding op is waiting for the stripe while another op is
   in flight — the serialized case the tightened oracle is about. *)
let mt_collide () =
  let setup, scripts = Fault_mt.collide_workload ~domains:2 ~ops_per_domain:8 in
  let r =
    Fault_mt.explore ~seed:42L ~domains:2 ~workload:"mt-collide" ~setup scripts
  in
  mt_check_report r;
  Alcotest.(check bool) "saw contended (waiting-writer) crash points" true
    (r.Fault_mt.contended > 0)

(* Seeded generator: each seed is a different mix of commuting and
   colliding inserts/updates/deletes/searches; three seeds per CI run. *)
let mt_generated () =
  List.iter
    (fun seed ->
      let setup, scripts = Fault_mt.gen_workload ~seed ~domains:2 ~ops_per_domain:6 in
      let r =
        Fault_mt.explore ~seed ~domains:2
          ~workload:(Printf.sprintf "mt-gen#%Ld" seed)
          ~setup scripts
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld has flush boundaries" seed)
        true
        (r.Fault_mt.total_flushes > 0);
      Alcotest.(check int)
        (Printf.sprintf "seed %Ld no violations" seed)
        0
        (List.length r.Fault_mt.violations))
    [ 42L; 43L; 44L ];
  (* determinism of the generator itself: same seed, same scripts *)
  Alcotest.(check bool) "generator is a pure function of the seed" true
    (Fault_mt.gen_workload ~seed:42L ~domains:2 ~ops_per_domain:6
    = Fault_mt.gen_workload ~seed:42L ~domains:2 ~ops_per_domain:6)

(* Checkpointed replay must check exactly what full re-execution checks:
   same flush census, same in-flight statistics, zero violations, and
   snapshots must actually have been taken and used. *)
let mt_checkpoint_equivalence () =
  let setup, scripts = Fault_mt.default_workload ~domains:2 ~ops_per_domain:4 in
  let plain =
    Fault_mt.explore ~seed:42L ~domains:2 ~workload:"mt-cp" ~setup scripts
  in
  let cp =
    Fault_mt.explore ~checkpoint_every:20 ~seed:42L ~domains:2
      ~workload:"mt-cp" ~setup scripts
  in
  Alcotest.(check int) "same flush census" plain.Fault_mt.total_flushes
    cp.Fault_mt.total_flushes;
  Alcotest.(check int) "same schedule count" plain.Fault_mt.schedules
    cp.Fault_mt.schedules;
  Alcotest.(check int) "same max in-flight" plain.Fault_mt.max_in_flight
    cp.Fault_mt.max_in_flight;
  Alcotest.(check int) "same multi-in-flight census"
    plain.Fault_mt.multi_in_flight cp.Fault_mt.multi_in_flight;
  Alcotest.(check int) "same contention census" plain.Fault_mt.contended
    cp.Fault_mt.contended;
  Alcotest.(check int) "plain run took no checkpoints" 0
    plain.Fault_mt.checkpoints;
  Alcotest.(check bool) "checkpointed run took snapshots" true
    (cp.Fault_mt.checkpoints > 0);
  Alcotest.(check bool) "some schedules replayed from a snapshot" true
    (cp.Fault_mt.checkpoint_replays > 0);
  Alcotest.(check int) "no violations either way" 0
    (List.length plain.Fault_mt.violations
    + List.length cp.Fault_mt.violations)

(* ------------------------------------------------------------------ *)
(* Nested concurrent recovery re-crash: after every mid-flight crash
   whose recovery passed the oracle, the single-domain recovery is
   itself crashed at each of its own flush boundaries, recovered again,
   and the doubly-recovered state judged against the same admissible
   set (DESIGN.md §12). *)

let mt_nested_sweep target () =
  let setup, scripts = Fault_mt.default_workload ~domains:2 ~ops_per_domain:4 in
  let r =
    Fault_mt.explore ~target ~nested:true ~seed:42L ~domains:2
      ~workload:"mt-nested" ~setup scripts
  in
  Alcotest.(check int) "full coverage" r.Fault_mt.total_flushes
    r.Fault_mt.schedules;
  Alcotest.(check int) "full nested coverage" r.Fault_mt.recovery_flushes
    r.Fault_mt.nested_schedules;
  Alcotest.(check int) "no violations" 0 (List.length r.Fault_mt.violations)

(* HART's recovery rewrites PM (micro-log replay, bitmap repair), so
   the nested sweep must actually have boundaries to crash. *)
let mt_nested_hart_covers () =
  let setup, scripts = Fault_mt.default_workload ~domains:2 ~ops_per_domain:6 in
  let r =
    Fault_mt.explore ~nested:true ~seed:42L ~domains:2 ~workload:"mt-nested"
      ~setup scripts
  in
  Alcotest.(check bool) "hart recovery flushes were re-crashed" true
    (r.Fault_mt.nested_schedules > 0);
  Alcotest.(check int) "no violations" 0 (List.length r.Fault_mt.violations)

(* FPTree split-repair racing fresh writers: domain 0 drives one hot
   leaf past capacity (leaf_cap = 32) while domain 1 keeps updating the
   hot keys and inserting fresh private ones, so the sweep crosses
   split, repair and recovery boundaries with writers in flight. The
   schedule space is pinned: a silent change would mean the sweep no
   longer explores what this test claims it does. *)
let mt_split_race_pin () =
  let setup, scripts =
    Fault_mt.split_race_workload ~domains:2 ~ops_per_domain:6
  in
  List.iter
    (fun mode ->
      let r =
        Fault_mt.explore ?mode ~target:Fault_mt.fptree_mt ~nested:true
          ~seed:42L ~domains:2 ~workload:"mt-split-race" ~setup scripts
      in
      Alcotest.(check int) "pinned schedule space" 99 r.Fault_mt.total_flushes;
      Alcotest.(check int) "full coverage" r.Fault_mt.total_flushes
        r.Fault_mt.schedules;
      Alcotest.(check int) "full nested coverage" r.Fault_mt.recovery_flushes
        r.Fault_mt.nested_schedules;
      Alcotest.(check bool) "split-side contention crossed" true
        (r.Fault_mt.contended > 0);
      Alcotest.(check bool) "writers in flight at crash points" true
        (r.Fault_mt.multi_in_flight > 0);
      Alcotest.(check int) "no violations" 0
        (List.length r.Fault_mt.violations))
    [ None; Some (Pmem.Torn { seed = 5L; fraction = 0.5 }) ]

(* ------------------------------------------------------------------ *)
(* Deterministic simulation of the full KV server stack (Fault_server):
   pipelined RESP clients over the seeded simulated network, crash at
   every flush boundary with requests in flight in every layer, and
   the session-linearizability oracle of DESIGN.md §17. *)

module Fault_server = Hart_fault.Fault_server

let srv_check_report r =
  Alcotest.(check bool) "has flush boundaries" true
    (r.Fault_server.total_flushes > 0);
  Alcotest.(check int) "full coverage" r.Fault_server.total_flushes
    r.Fault_server.schedules;
  Alcotest.(check bool) "pipelined batch ops in flight at some crash" true
    (r.Fault_server.max_in_flight >= 2);
  Alcotest.(check bool) "schedules with >= 2 ops in flight" true
    (r.Fault_server.multi_in_flight > 0);
  Alcotest.(check bool) "write acks parsed across crashed schedules" true
    (r.Fault_server.acked_writes > 0);
  Alcotest.(check int) "no violations" 0 (List.length r.Fault_server.violations)

let srv_sweep ?mode () =
  let setup, scripts =
    Fault_server.default_workload ~clients:2 ~ops_per_client:8
  in
  let r =
    Fault_server.explore ?mode ~seed:11L ~clients:2 ~workload:"srv" ~setup
      scripts
  in
  srv_check_report r

let srv_torn_sweep () =
  srv_sweep ~mode:(Pmem.Torn { seed = 7L; fraction = 0.5 }) ()

let srv_drop_sweep () =
  let setup, scripts, drops =
    Fault_server.drop_workload ~clients:2 ~ops_per_client:8
  in
  let r =
    Fault_server.explore ~drops ~seed:11L ~clients:2 ~workload:"srv-drop"
      ~setup scripts
  in
  Alcotest.(check bool) "has flush boundaries" true
    (r.Fault_server.total_flushes > 0);
  Alcotest.(check int) "full coverage" r.Fault_server.total_flushes
    r.Fault_server.schedules;
  Alcotest.(check bool) "sessions hard-dropped mid-pipelined-batch" true
    (r.Fault_server.dropped_sessions > 0);
  Alcotest.(check int) "no violations" 0 (List.length r.Fault_server.violations)

(* The whole stack — fragmentation, fiber choice, batching, crash — is
   a pure function of (seed, schedule). *)
let srv_determinism () =
  let setup, scripts =
    Fault_server.default_workload ~clients:2 ~ops_per_client:6
  in
  let p1 = Fault_server.probe ~seed:7L ~schedule:25 ~setup scripts in
  let p2 = Fault_server.probe ~seed:7L ~schedule:25 ~setup scripts in
  Alcotest.(check bool) "byte-level replay is identical" true (p1 = p2);
  Alcotest.(check bool) "the armed schedule fired" true p1.Fault_server.p_crashed;
  Alcotest.(check (list string)) "no oracle errors" [] p1.Fault_server.p_errors

(* ------------------------------------------------------------------ *)
(* Self-minimizing reproducers: re-inject the PR 3 free-before-sever
   bug (Epalloc's reservation hold degraded to a plain durable bit
   reset, so a racing domain can reallocate a freed object while the
   crashing domain's parent pointer still reaches it) and require the
   shrinker to carve a violating workload down to a locally minimal,
   deterministically replayable reproducer. *)

module Epalloc = Hart_core.Epalloc

let with_injected_bug f =
  Epalloc.unsafe_no_reservation_hold := true;
  Fun.protect
    ~finally:(fun () -> Epalloc.unsafe_no_reservation_hold := false)
    f

(* Does this (seed, workload) violate under deterministic replay? *)
let mt_violates ~seed ~setup scripts =
  match
    Fault_mt.explore ~keep_going:true ~stop_after_first:true ~seed
      ~domains:(Array.length scripts) ~workload:"inject" ~setup scripts
  with
  | r -> r.Fault_mt.violations <> []
  | exception Fault.Violation _ -> true
  | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
  (* a corrupted target can also trip the explorer itself; like the
     shrinker, count any deterministic failure as a violation *)
  | exception _ -> true

let find_mt_violation () =
  let candidates =
    List.concat_map
      (fun seed ->
        let s = Int64.of_int seed in
        [
          (s, Fault_mt.default_workload ~domains:2 ~ops_per_domain:6);
          (s, Fault_mt.collide_workload ~domains:2 ~ops_per_domain:6);
          (s, Fault_mt.gen_workload ~seed:s ~domains:2 ~ops_per_domain:6);
        ])
      [ 1; 2; 3; 4; 5 ]
  in
  List.find_opt
    (fun (seed, (setup, scripts)) -> mt_violates ~seed ~setup scripts)
    candidates

let mt_shrink_regression () =
  with_injected_bug (fun () ->
      match find_mt_violation () with
      | None -> Alcotest.fail "bug injection produced no violating schedule"
      | Some (seed, (setup, scripts)) -> (
          match Fault_mt.shrink ~seed ~setup scripts with
          | None -> Alcotest.fail "shrinker lost the violation"
          | Some s ->
              let repro = s.Fault_mt.s_repro in
              let ops = Fault.repro_ops repro in
              Alcotest.(check bool)
                (Printf.sprintf "reproducer has <= 10 ops (got %d)" ops)
                true (ops <= 10);
              Alcotest.(check bool) "reproducer has <= 2 domains" true
                (repro.Fault.r_domains <= 2);
              Alcotest.(check bool) "shrink accepted at least one move" true
                (s.Fault_mt.s_accepted > 0);
              (* the minimal coordinates still violate, twice: the replay
                 is deterministic *)
              let still () =
                mt_violates ~seed:repro.Fault.r_seed ~setup:repro.Fault.r_setup
                  repro.Fault.r_scripts
              in
              Alcotest.(check bool) "shrunk workload still violates" true
                (still ());
              Alcotest.(check bool) "deterministically so" true (still ())))

(* The known-minimal shape of the PR 3 bug: one domain's out-of-place
   update durably frees the old value object with the pending update
   log still referencing it, while the other domain's mutation
   reallocates the just-freed slot; crashing before the log reclaims
   makes replay free the new owner's value. From these coordinates the
   shrinker must reproduce a <= 3-op reproducer. *)
let mt_shrink_minimal_shape () =
  with_injected_bug (fun () ->
      let setup = [ Fault.Insert ("aa00", "v0"); Fault.Insert ("bb00", "v1") ] in
      let scripts =
        [| [ Fault.Update ("aa00", "u0") ]; [ Fault.Delete "bb00" ] |]
      in
      let seed =
        List.find_opt
          (fun s -> mt_violates ~seed:s ~setup scripts)
          (List.init 16 (fun i -> Int64.of_int (i + 1)))
      in
      match seed with
      | None -> Alcotest.fail "minimal free-before-sever shape did not violate"
      | Some seed -> (
          match Fault_mt.shrink ~seed ~setup scripts with
          | None -> Alcotest.fail "shrinker lost the violation"
          | Some s ->
              let ops = Fault.repro_ops s.Fault_mt.s_repro in
              Alcotest.(check bool)
                (Printf.sprintf "<= 3-op reproducer (got %d)" ops)
                true (ops <= 3)))

(* With the fix in place (hold restored), the exact same search finds
   nothing: the regression gate is meaningful. *)
let mt_no_violation_when_fixed () =
  let setup, scripts = Fault_mt.default_workload ~domains:2 ~ops_per_domain:6 in
  Alcotest.(check bool) "fixed allocator passes the same sweep" false
    (mt_violates ~seed:1L ~setup scripts)

(* The server sweep must catch real durability bugs end to end: the
   same injected allocator bug, observed through RESP sessions instead
   of direct index calls, and carved down to a minimal replayable
   reproducer by the same delta-debugging core. *)

let srv_violates ~seed ~setup scripts =
  match
    Fault_server.explore ~keep_going:true ~stop_after_first:true ~seed
      ~clients:(Array.length scripts) ~workload:"srv-inject" ~setup scripts
  with
  | r -> r.Fault_server.violations <> []
  | exception Fault.Violation _ -> true
  | exception ((Stack_overflow | Out_of_memory) as e) -> raise e
  | exception _ -> true

let srv_shrink_regression () =
  with_injected_bug (fun () ->
      let candidates =
        List.map
          (fun s ->
            ( Int64.of_int s,
              Fault_server.default_workload ~clients:2 ~ops_per_client:8 ))
          [ 1; 2; 3; 4; 5; 11 ]
      in
      match
        List.find_opt
          (fun (seed, (setup, scripts)) -> srv_violates ~seed ~setup scripts)
          candidates
      with
      | None ->
          Alcotest.fail "bug injection produced no violating server schedule"
      | Some (seed, (setup, scripts)) -> (
          match Fault_server.shrink ~seed ~setup scripts with
          | None -> Alcotest.fail "shrinker lost the violation"
          | Some s ->
              let repro = s.Fault_mt.s_repro in
              Alcotest.(check bool) "reproducer has <= 2 clients" true
                (repro.Fault.r_domains <= 2);
              Alcotest.(check bool)
                (Printf.sprintf "reproducer has <= 12 ops (got %d)"
                   (Fault.repro_ops repro))
                true
                (Fault.repro_ops repro <= 12);
              let still () =
                srv_violates ~seed:repro.Fault.r_seed
                  ~setup:repro.Fault.r_setup repro.Fault.r_scripts
              in
              Alcotest.(check bool) "shrunk session still violates" true
                (still ());
              Alcotest.(check bool) "deterministically so" true (still ())))

let srv_no_violation_when_fixed () =
  let setup, scripts =
    Fault_server.default_workload ~clients:2 ~ops_per_client:8
  in
  Alcotest.(check bool) "fixed allocator passes the same server sweep" false
    (srv_violates ~seed:1L ~setup scripts)

let () =
  Alcotest.run "fault"
    [
      ("oracle", [ Alcotest.test_case "apply_model" `Quick oracle_semantics ]);
      ("hart-clean", clean_cases ~expect_nested:true Fault.hart);
      ( "hart-schedule-pin",
        [ Alcotest.test_case "schedule space unchanged" `Quick schedule_space_pin ] );
      ( "fptree-clean",
        clean_cases Fault.fptree
        @ [ Alcotest.test_case "fptree/split-chain repairs torn split" `Quick
              fptree_split_repair ] );
      ("hart-parallel-recovery", parallel_recovery_cases);
      ("hart-torn", torn_cases Fault.hart);
      ("fptree-torn", torn_cases Fault.fptree);
      ( "torn-full",
        [
          Alcotest.test_case "hart full eviction = clean" `Quick
            (torn_full_eviction Fault.hart);
          Alcotest.test_case "fptree full eviction = clean" `Quick
            (torn_full_eviction Fault.fptree);
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "hart/mixed-dense replay equivalence" `Quick
            (checkpoint_equivalence Fault.hart "mixed-dense");
          Alcotest.test_case "hart/split-chain replay equivalence" `Quick
            (checkpoint_equivalence Fault.hart "split-chain");
          Alcotest.test_case "fptree/split-chain replay equivalence" `Quick
            (checkpoint_equivalence Fault.fptree "split-chain");
        ] );
      ( "meta",
        [
          Alcotest.test_case "detects broken target" `Quick detects_violation;
          Alcotest.test_case "keep-going collects all violations" `Quick
            keep_going_collects;
          Alcotest.test_case "all eight targets registered" `Quick
            all_targets_registered;
        ] );
      ("baselines", baseline_cases);
      ( "media",
        List.map
          (fun tgt ->
            Alcotest.test_case
              (Printf.sprintf "%s/mixed-dense media sweep" tgt.Fault.target_name)
              `Quick (media_sweep_target tgt))
          Fault.media_targets
        @ [
            Alcotest.test_case "deterministic replay" `Quick
              media_sweep_deterministic;
            Alcotest.test_case "roster and capabilities" `Quick
              media_sweep_roster;
            Alcotest.test_case "media JSON serialization" `Quick media_json;
          ] );
      ( "adversarial",
        [
          Alcotest.test_case "commit-line + subset passes" `Quick
            adversarial_sweep;
          Alcotest.test_case "directed read-set eviction" `Quick
            adversarial_directed;
        ] );
      ( "json",
        [ Alcotest.test_case "violation serialization" `Quick violation_json ] );
      ( "mt",
        [
          Alcotest.test_case "2-domain exhaustive sweep" `Quick (mt_sweep ~domains:2);
          Alcotest.test_case "4-domain exhaustive sweep" `Quick (mt_sweep ~domains:4);
          Alcotest.test_case "2-domain torn sweep" `Quick mt_torn_sweep;
          Alcotest.test_case "replay determinism" `Quick mt_determinism;
          Alcotest.test_case "max-schedules subsampling" `Quick mt_subsample;
          Alcotest.test_case "fptree-mt 2-domain sweep" `Quick
            (mt_index_sweep Fault_mt.fptree_mt);
          Alcotest.test_case "woart-mt 2-domain sweep" `Quick
            (mt_index_sweep Fault_mt.woart_mt);
          Alcotest.test_case "wb-tree-mt 2-domain sweep" `Quick
            (mt_index_sweep Fault_mt.wb_tree_mt);
          Alcotest.test_case "same-stripe collision sweep" `Quick mt_collide;
          Alcotest.test_case "generated workloads, 3 seeds" `Quick mt_generated;
          Alcotest.test_case "nested recovery re-crash: hart" `Quick
            (mt_nested_sweep Fault_mt.hart_mt);
          Alcotest.test_case "nested recovery re-crash: fptree" `Quick
            (mt_nested_sweep Fault_mt.fptree_mt);
          Alcotest.test_case "nested recovery re-crash: woart" `Quick
            (mt_nested_sweep Fault_mt.woart_mt);
          Alcotest.test_case "nested sweep covers hart recovery" `Quick
            mt_nested_hart_covers;
          Alcotest.test_case "shrinker: injected bug to minimal repro" `Quick
            mt_shrink_regression;
          Alcotest.test_case "shrinker: known shape to <= 3 ops" `Quick
            mt_shrink_minimal_shape;
          Alcotest.test_case "no violation once fixed" `Quick
            mt_no_violation_when_fixed;
          Alcotest.test_case "checkpointed replay equivalence" `Quick
            mt_checkpoint_equivalence;
          Alcotest.test_case "fptree split-race pinned nested sweep" `Quick
            mt_split_race_pin;
        ] );
      ( "server-dst",
        [
          Alcotest.test_case "2-client exhaustive sweep" `Quick (srv_sweep ?mode:None);
          Alcotest.test_case "2-client torn sweep" `Quick srv_torn_sweep;
          Alcotest.test_case "hard-drop mid-batch sweep" `Quick srv_drop_sweep;
          Alcotest.test_case "byte-level replay determinism" `Quick
            srv_determinism;
          Alcotest.test_case "injected bug to minimal repro" `Quick
            srv_shrink_regression;
          Alcotest.test_case "no violation once fixed" `Quick
            srv_no_violation_when_fixed;
        ] );
    ]
