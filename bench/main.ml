(* Benchmark entry point.

   Two layers, as DESIGN.md explains:

   1. Bechamel micro-benchmarks (wall-clock): raw OCaml-side cost of the
      basic operations on each tree. Wall-clock on DRAM hardware cannot
      express PM latency, so these only sanity-check the implementations.

   2. Figure reproductions (simulated clock): one section per table and
      figure of the paper's evaluation (Figs. 4-10d), using the paper's
      own methodology of charging configured PM latencies to counted
      memory events.

   Usage: main.exe [--scale F] [--only EXP[,EXP...]] [--skip-micro]
     EXP in: fig4567 fig8 fig9 fig10a fig10b fig10c fig10d ablation
             parallel ycsb recovery art_nodes scrub server *)

module Latency = Hart_pmem.Latency
module Keygen = Hart_workloads.Keygen
module Runner = Hart_harness.Runner

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let micro_tests () =
  let open Bechamel in
  let n = 10_000 in
  let keys = Keygen.generate Keygen.Random n in
  let shuffled = Array.copy keys in
  Hart_util.Rng.shuffle (Hart_util.Rng.create 17L) shuffled;
  let per_tree tree =
    let name = Runner.tree_name tree in
    let built =
      lazy
        (let inst = Runner.make tree Latency.c300_100 in
         Runner.preload inst keys Keygen.value_for;
         inst)
    in
    let idx = ref 0 in
    let next () =
      let i = !idx in
      idx := (i + 1) mod n;
      i
    in
    [
      Test.make ~name:(name ^ "/insert")
        (Staged.stage (fun () ->
             let inst = Lazy.force built in
             let i = next () in
             inst.Runner.ops.Hart_baselines.Index_intf.insert ~key:keys.(i)
               ~value:"bench77"));
      Test.make ~name:(name ^ "/search")
        (Staged.stage (fun () ->
             let inst = Lazy.force built in
             ignore
               (inst.Runner.ops.Hart_baselines.Index_intf.search
                  shuffled.(next ())
                 : string option)));
      Test.make ~name:(name ^ "/update")
        (Staged.stage (fun () ->
             let inst = Lazy.force built in
             ignore
               (inst.Runner.ops.Hart_baselines.Index_intf.update
                  ~key:shuffled.(next ()) ~value:"bench88"
                 : bool)));
    ]
  in
  Bechamel.Test.make_grouped ~name:"micro"
    (List.concat_map per_tree Runner.all_trees)

let run_micro () =
  let open Bechamel in
  print_endline "\n=== Bechamel micro-benchmarks (wall-clock ns/op, DRAM host) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols_result) ->
         match Analyze.OLS.estimates ols_result with
         | Some [ est ] -> Printf.printf "  %-28s %10.0f ns/op\n" name est
         | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)

(* ------------------------------------------------------------------ *)
(* Argument handling                                                   *)

let usage () =
  prerr_endline
    "usage: main.exe [--scale F] [--only EXP[,EXP...]] [--skip-micro] \
     [--json-dir DIR]\n\
    \  EXP in: fig4567 fig8 fig9 fig10a fig10b fig10c fig10d ablation \
     parallel ycsb recovery art_nodes scrub server\n\
    \  --json-dir DIR also writes BENCH_figs.json (every printed table) \
     and,\n\
    \  per experiment, BENCH_parallel.json / BENCH_ycsb.json / \
     BENCH_recovery.json / BENCH_art_nodes.json / BENCH_scrub.json / \
     BENCH_server.json.";
  exit 2

let () =
  let scale = ref 1.0 in
  let only = ref [] in
  let skip_micro = ref false in
  let json_dir = ref None in
  let rec parse = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0. -> scale := f
        | Some _ | None -> usage ());
        parse rest
    | "--only" :: v :: rest ->
        only := !only @ String.split_on_char ',' (String.lowercase_ascii v);
        parse rest
    | "--skip-micro" :: rest ->
        skip_micro := true;
        parse rest
    | "--json-dir" :: v :: rest ->
        json_dir := Some v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let scale = !scale in
  let wants exp = !only = [] || List.mem exp !only in
  (match !json_dir with
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Hart_harness.Report.start_capture ()
  | None -> ());
  Printf.printf
    "HART reproduction benchmark harness (scale %.2f)\n\
     Times below are on the simulated clock: configured PM/DRAM latencies\n\
     charged to counted memory events (the paper's emulation methodology).\n"
    scale;
  if (not !skip_micro) && !only = [] then run_micro ();
  if
    wants "fig4567" || wants "fig4" || wants "fig5" || wants "fig6"
    || wants "fig7"
  then Hart_harness.Exp_basic_ops.run ~scale;
  if wants "fig8" then Hart_harness.Exp_scaling.run ~scale;
  if wants "fig9" then Hart_harness.Exp_mixed.run ~scale;
  if wants "fig10a" then Hart_harness.Exp_range.run ~scale;
  if wants "fig10b" then Hart_harness.Exp_memory.run ~scale;
  if wants "fig10c" then Hart_harness.Exp_recovery.run ~scale;
  if wants "fig10d" then Hart_harness.Exp_scalability.run ~scale;
  if wants "ablation" then Hart_harness.Exp_ablation.run ~scale;
  if wants "parallel" then
    Hart_harness.Exp_parallel.run
      ?json_path:
        (Option.map (fun d -> Filename.concat d "BENCH_parallel.json") !json_dir)
      ~scale ();
  if wants "ycsb" then
    Hart_harness.Exp_ycsb.run
      ?json_path:
        (Option.map (fun d -> Filename.concat d "BENCH_ycsb.json") !json_dir)
      ~scale ();
  if wants "recovery" then
    Hart_harness.Exp_recovery.run_parallel
      ?json_path:
        (Option.map (fun d -> Filename.concat d "BENCH_recovery.json") !json_dir)
      ~scale ();
  if wants "art_nodes" then
    Hart_harness.Exp_art_nodes.run
      ?json_path:
        (Option.map (fun d -> Filename.concat d "BENCH_art_nodes.json") !json_dir)
      ~scale ();
  if wants "scrub" then
    Hart_harness.Exp_scrub.run
      ?json_path:
        (Option.map (fun d -> Filename.concat d "BENCH_scrub.json") !json_dir)
      ~scale ();
  if wants "server" then
    ignore
      (Hart_harness.Exp_server.run
         ?json_path:
           (Option.map
              (fun d -> Filename.concat d "BENCH_server.json")
              !json_dir)
         ~scale ()
        : Hart_harness.Exp_server.run_result list);
  (match !json_dir with
  | Some dir ->
      let path = Filename.concat dir "BENCH_figs.json" in
      Hart_harness.Report.dump_captured ~path;
      Printf.printf "wrote %s\n" path
  | None -> ());
  print_newline ()
