(* Replay one exact concurrent crash schedule and dump its coordinates:
   committed prefix, in-flight set, recovered bindings. This is the
   triage tool for `hart_cli fault --domains N` violations — the
   reported (seed, schedule) pair replays bit-identically here
   (DESIGN.md §10). Usage: fault_debug DOMAINS SCHEDULE [SEED]. *)
module Fault = Hart_fault.Fault
module Fault_mt = Hart_fault.Fault_mt

let () =
  (match Sys.argv with
  | [| _; _; _ |] | [| _; _; _; _ |] -> ()
  | _ ->
      prerr_endline "usage: fault_debug DOMAINS SCHEDULE [SEED]";
      exit 2);
  let domains = int_of_string Sys.argv.(1) in
  let schedule = int_of_string Sys.argv.(2) in
  let seed =
    if Array.length Sys.argv > 3 then Int64.of_string Sys.argv.(3) else 42L
  in
  let setup, scripts = Fault_mt.default_workload ~domains ~ops_per_domain:6 in
  match Fault_mt.probe ~seed ~schedule ~setup scripts with
  | p ->
      Printf.printf "crashed=%b flushes=%d\n" p.Fault_mt.p_crashed p.Fault_mt.p_flushes;
      Printf.printf "committed: %s\n"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) p.Fault_mt.p_committed));
      List.iter
        (fun (i, op) ->
          Format.printf "in-flight fiber %d: %a@." i Fault.pp_op op)
        p.Fault_mt.p_in_flight;
      Printf.printf "recovered: %s\n"
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) p.Fault_mt.p_state))
  | exception Failure msg ->
      Printf.printf "FAILURE: %s\n" msg;
      exit 1
