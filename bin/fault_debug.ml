(* Replay one exact concurrent crash schedule and dump its coordinates:
   committed prefix, in-flight set, recovered bindings. This is the
   triage tool for `hart_cli fault --domains N` violations — the
   reported (seed, schedule) pair replays bit-identically here
   (DESIGN.md §10, §12).

   Usage: fault_debug DOMAINS SCHEDULE [SEED]
            [--index NAME] [--workload default|collide|gen]
            [--gen-seed S] [--nested] [--shrink]

   --index     concurrent index to replay against (hart, fptree, woart,
               wort; default hart)
   --workload  workload family to rebuild (the CLI's --mt-workload);
               gen rebuilds the seeded workload from --gen-seed
   --nested    additionally re-crash the single-domain recovery at each
               of its own flush boundaries and dump each doubly
               recovered state
   --shrink    delta-debug the workload to a locally minimal
               reproducer (only meaningful when the replay violates) *)
module Fault = Hart_fault.Fault
module Fault_mt = Hart_fault.Fault_mt

let usage () =
  prerr_endline
    "usage: fault_debug DOMAINS SCHEDULE [SEED] [--index NAME]\n\
    \       [--workload default|collide|gen] [--gen-seed S] [--nested]\n\
    \       [--shrink]";
  exit 2

let () =
  let positional = ref [] in
  let index = ref "hart" in
  let workload = ref "default" in
  let gen_seed = ref 42L in
  let nested = ref false in
  let shrink = ref false in
  let rec parse = function
    | [] -> ()
    | "--index" :: v :: rest ->
        index := v;
        parse rest
    | "--workload" :: v :: rest ->
        workload := v;
        parse rest
    | "--gen-seed" :: v :: rest ->
        gen_seed := Int64.of_string v;
        parse rest
    | "--nested" :: rest ->
        nested := true;
        parse rest
    | "--shrink" :: rest ->
        shrink := true;
        parse rest
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
        Printf.eprintf "unknown option %s\n" a;
        usage ()
    | a :: rest ->
        positional := a :: !positional;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let domains, schedule, seed =
    match List.rev !positional with
    | [ d; s ] -> (int_of_string d, int_of_string s, 42L)
    | [ d; s; sd ] -> (int_of_string d, int_of_string s, Int64.of_string sd)
    | _ -> usage ()
  in
  let target =
    match Fault_mt.find_mt_target !index with
    | Some t -> t
    | None ->
        Printf.eprintf "unknown concurrent index %S\n" !index;
        exit 2
  in
  let setup, scripts =
    match !workload with
    | "default" -> Fault_mt.default_workload ~domains ~ops_per_domain:6
    | "collide" -> Fault_mt.collide_workload ~domains ~ops_per_domain:6
    | "gen" -> Fault_mt.gen_workload ~seed:!gen_seed ~domains ~ops_per_domain:6
    | w ->
        Printf.eprintf "unknown --workload %S (default, collide, gen)\n" w;
        exit 2
  in
  let dump_bindings label bs =
    Printf.printf "%s: %s\n" label
      (String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) bs))
  in
  match
    Fault_mt.probe ~target ~capture_snapshot:!nested ~seed ~schedule ~setup
      scripts
  with
  | p ->
      Printf.printf "crashed=%b flushes=%d recovery-flushes=%d\n"
        p.Fault_mt.p_crashed p.Fault_mt.p_flushes p.Fault_mt.p_recovery_flushes;
      dump_bindings "committed" p.Fault_mt.p_committed;
      List.iter
        (fun (i, op) ->
          Format.printf "in-flight fiber %d: %a@." i Fault.pp_op op)
        p.Fault_mt.p_in_flight;
      List.iter
        (fun (i, op) -> Format.printf "waiting fiber %d: %a@." i Fault.pp_op op)
        p.Fault_mt.p_waiting;
      dump_bindings "recovered" p.Fault_mt.p_state;
      (if !nested then
         match p.Fault_mt.p_snapshot with
         | None -> print_endline "nested: schedule did not crash, nothing to re-crash"
         | Some snapshot ->
             Fault.nested_recovery_sweep ~snapshot
               ~recovery_flushes:p.Fault_mt.p_recovery_flushes
               ~recover:(fun pool ->
                 ignore (target.Fault_mt.mt_recover_dump pool : (string * string) list))
               ~never_fired:(fun ~nested ->
                 Printf.printf "nested %d: recovery completed before boundary\n"
                   nested)
               ~check:(fun ~nested pool ->
                 match target.Fault_mt.mt_recover_dump pool with
                 | state ->
                     dump_bindings
                       (Printf.sprintf "nested %d%s" nested
                          (if state = p.Fault_mt.p_state then "" else " (DIFFERS)"))
                       state
                 | exception Failure msg ->
                     Printf.printf "nested %d: FAILURE: %s\n" nested msg));
      if !shrink then
        match Fault_mt.shrink ~target ~seed ~setup scripts with
        | None -> print_endline "shrink: workload does not violate under replay"
        | Some s ->
            Printf.printf "shrink: %d candidate replays, %d accepted\n"
              s.Fault_mt.s_checks s.Fault_mt.s_accepted;
            Format.printf "%a@." Fault.pp_repro s.Fault_mt.s_repro;
            Printf.printf "detail at minimum: %s\n" s.Fault_mt.s_detail
  | exception Failure msg ->
      Printf.printf "FAILURE: %s\n" msg;
      exit 1
