(* hart_cli — a persistent key-value store CLI over HART.

   The simulated PM pool is saved to / loaded from a host file, so data
   survives across invocations the way a PM device survives reboots:
   every run that opens an existing store exercises HART's recovery path
   (Algorithm 7).

   Examples:
     hart_cli set user:1 alice --db /tmp/store.pm
     hart_cli get user:1 --db /tmp/store.pm
     hart_cli range user: user:~ --db /tmp/store.pm
     hart_cli bench --records 50000 --db /tmp/store.pm
     hart_cli stats --db /tmp/store.pm *)

module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Pmem = Hart_pmem.Pmem
module Hart = Hart_core.Hart
module Hart_error = Hart_core.Hart_error
open Cmdliner

let open_store db =
  let meter = Meter.create Latency.c300_300 in
  if Sys.file_exists db then begin
    let pool = Pmem.load meter db in
    (pool, Hart.recover pool)
  end
  else
    let pool = Pmem.create meter in
    (pool, Hart.create pool)

let close_store pool db =
  Pmem.persist_all pool;
  Pmem.save pool db

let db_arg =
  let doc = "Path of the persistent pool image." in
  Arg.(value & opt string "hart.pm" & info [ "db" ] ~docv:"FILE" ~doc)

let ok_or_die = function
  | Ok () -> 0
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      1

let wrap f db =
  ok_or_die
    (try
       let pool, hart = open_store db in
       let r = f pool hart in
       close_store pool db;
       r
     with
    | Invalid_argument m | Failure m -> Error m
    | Sys_error m -> Error m)

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)

let set_cmd =
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  let value = Arg.(required & pos 1 (some string) None & info [] ~docv:"VALUE") in
  let run key value db =
    wrap
      (fun _ hart ->
        Hart.insert hart ~key ~value;
        Ok ())
      db
  in
  Cmd.v
    (Cmd.info "set" ~doc:"Insert or update a key (1-24 byte key, 0-31 byte value).")
    Term.(const run $ key $ value $ db_arg)

let get_cmd =
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  let run key db =
    wrap
      (fun _ hart ->
        match Hart.search hart key with
        | Some v ->
            print_endline v;
            Ok ()
        | None -> Error (Printf.sprintf "key %S not found" key))
      db
  in
  Cmd.v (Cmd.info "get" ~doc:"Look a key up.") Term.(const run $ key $ db_arg)

let del_cmd =
  let key = Arg.(required & pos 0 (some string) None & info [] ~docv:"KEY") in
  let run key db =
    wrap
      (fun _ hart ->
        if Hart.delete hart key then Ok ()
        else Error (Printf.sprintf "key %S not found" key))
      db
  in
  Cmd.v (Cmd.info "del" ~doc:"Delete a key.") Term.(const run $ key $ db_arg)

let range_cmd =
  let lo = Arg.(required & pos 0 (some string) None & info [] ~docv:"LO") in
  let hi = Arg.(required & pos 1 (some string) None & info [] ~docv:"HI") in
  let run lo hi db =
    wrap
      (fun _ hart ->
        Hart.range hart ~lo ~hi (fun k v -> Printf.printf "%s\t%s\n" k v);
        Ok ())
      db
  in
  Cmd.v
    (Cmd.info "range" ~doc:"List keys in [LO, HI] in order.")
    Term.(const run $ lo $ hi $ db_arg)

let list_cmd =
  let run db =
    wrap
      (fun _ hart ->
        Hart.iter hart (fun k v -> Printf.printf "%s\t%s\n" k v);
        Ok ())
      db
  in
  Cmd.v (Cmd.info "list" ~doc:"Dump every binding.") Term.(const run $ db_arg)

let stats_cmd =
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Full structural statistics.")
  in
  let run verbose db =
    wrap
      (fun pool hart ->
        if verbose then
          Format.printf "%a@." Hart_core.Hart_stats.pp
            (Hart_core.Hart_stats.collect hart)
        else begin
          Printf.printf "keys            %d\n" (Hart.count hart);
          Printf.printf "ARTs            %d\n" (Hart.art_count hart);
          Printf.printf "hash-key bytes  %d\n" (Hart.kh hart);
          Printf.printf "PM bytes        %d\n" (Hart.pm_bytes hart);
          Printf.printf "DRAM bytes      %d\n" (Hart.dram_bytes hart)
        end;
        let c = Meter.counters (Pmem.meter pool) in
        Printf.printf "session events  %d flushes, %d allocations, %.1f us simulated\n"
          c.Meter.flushes c.Meter.pm_allocs (c.Meter.sim_ns /. 1000.);
        Hart.check_integrity hart;
        Printf.printf "integrity       OK\n";
        Ok ())
      db
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Show store statistics and verify integrity.")
    Term.(const run $ verbose $ db_arg)

let bench_cmd =
  let records =
    Arg.(value & opt int 10_000 & info [ "records" ] ~docv:"N" ~doc:"Records to load.")
  in
  let run records db =
    wrap
      (fun pool hart ->
        let keys = Hart_workloads.Keygen.generate Hart_workloads.Keygen.Random records in
        let t0 = Meter.sim_ns (Pmem.meter pool) in
        Array.iteri
          (fun i key ->
            Hart.insert hart ~key ~value:(Hart_workloads.Keygen.value_for i))
          keys;
        let dt = Meter.sim_ns (Pmem.meter pool) -. t0 in
        Printf.printf "loaded %d records in %.3f simulated s (%.3f us/op)\n" records
          (dt /. 1e9)
          (dt /. float_of_int records /. 1000.);
        Ok ())
      db
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Bulk-load random records and report simulated cost.")
    Term.(const run $ records $ db_arg)

let parallel_cmd =
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"F"
          ~doc:"Scale the per-phase operation count (default 200k ops).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the results as JSON (BENCH_parallel.json format).")
  in
  let min_speedup =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:
            "Fail (exit 1) unless uniform-insert throughput at \
             $(b,--speedup-domains) domains is at least X times the \
             1-domain figure. Skipped with a logged notice when the host \
             reports fewer usable cores than that domain count.")
  in
  let speedup_domains =
    Arg.(
      value & opt int 4
      & info [ "speedup-domains" ] ~docv:"N"
          ~doc:"Domain count the $(b,--min-speedup) threshold applies to.")
  in
  let run scale json min_speedup speedup_domains =
    ok_or_die
      (if scale <= 0. then Error "scale must be positive"
       else begin
         let threshold =
           Option.map (fun x -> (speedup_domains, x)) min_speedup
         in
         match Hart_harness.Exp_parallel.run ?json_path:json ?threshold ~scale () with
         | () -> Ok ()
         | exception Failure msg -> Error msg
       end)
  in
  Cmd.v
    (Cmd.info "parallel"
       ~doc:
         "Measure wall-clock multi-domain scalability of the concurrent \
          HART front end (uniform and Zipf key mixes, 1-8 domains). Real \
          [Domain.spawn] timings, not the simulated clock.")
    Term.(const run $ scale $ json $ min_speedup $ speedup_domains)

let ycsb_cmd =
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"F"
          ~doc:"Scale the preload size (default 20k records, 2x ops).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the results as JSON (BENCH_ycsb.json format).")
  in
  let run scale json =
    ok_or_die
      (if scale <= 0. then Error "scale must be positive"
       else
         match Hart_harness.Exp_ycsb.run ?json_path:json ~scale () with
         | () -> Ok ()
         | exception Failure msg -> Error msg)
  in
  Cmd.v
    (Cmd.info "ycsb"
       ~doc:
         "Run the six YCSB core workloads (A-F) over every index in the \
          repo, plus request-skew, composite-key and delete-churn \
          variants, on the simulated clock.")
    Term.(const run $ scale $ json)

let recovery_cmd =
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"F"
          ~doc:"Scale the pool sizes (default 50k/200k/1M keys).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the results as JSON (BENCH_recovery.json format).")
  in
  let min_speedup =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:
            "Fail (exit 1) unless recovery at $(b,--speedup-domains) \
             domains on the largest pool is at least X times faster than \
             serial. Skipped with a logged notice when the host reports \
             fewer usable cores than that domain count.")
  in
  let speedup_domains =
    Arg.(
      value & opt int 4
      & info [ "speedup-domains" ] ~docv:"N"
          ~doc:"Domain count the $(b,--min-speedup) threshold applies to.")
  in
  let run scale json min_speedup speedup_domains =
    ok_or_die
      (if scale <= 0. then Error "scale must be positive"
       else begin
         let threshold =
           Option.map (fun x -> (speedup_domains, x)) min_speedup
         in
         match
           Hart_harness.Exp_recovery.run_parallel ?json_path:json ?threshold
             ~scale ()
         with
         | () -> Ok ()
         | exception Failure msg -> Error msg
       end)
  in
  Cmd.v
    (Cmd.info "recovery"
       ~doc:
         "Measure wall-clock parallel recovery (Hart.recover_parallel) \
          against pool size at 1-8 domains, verifying every rebuild \
          against the original contents. Real [Domain.spawn] timings.")
    Term.(const run $ scale $ json $ min_speedup $ speedup_domains)

let art_nodes_cmd =
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"F"
          ~doc:"Scale the key counts (default 100k and 1M keys).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the results as JSON (BENCH_art_nodes.json format).")
  in
  let min_lookup_speedup =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-lookup-speedup" ] ~docv:"X"
          ~doc:
            "Fail (exit 1) unless uniform-random search on the bitmap \
             layer at the largest key count is at least X times faster \
             (wall clock) than the boxed layer. Skipped with a logged \
             notice when the scaled sizes are too small to time \
             meaningfully.")
  in
  let run scale json min_lookup_speedup =
    ok_or_die
      (if scale <= 0. then Error "scale must be positive"
       else
         match
           Hart_harness.Exp_art_nodes.run ?json_path:json
             ?lookup_threshold:min_lookup_speedup ~scale ()
         with
         | () -> Ok ()
         | exception Failure msg -> Error msg)
  in
  Cmd.v
    (Cmd.info "art-nodes"
       ~doc:
         "Benchmark the bitmap ART node layer against the retained boxed \
          layer: wall-clock ns/op for insert, search, delete and range at \
          100k-1M keys, plus simulated ns/op as a cost-model fidelity \
          check (the two layers must agree exactly).")
    Term.(const run $ scale $ json $ min_lookup_speedup)

(* ------------------------------------------------------------------ *)
(* serve / loadgen                                                     *)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt string "/tmp/hart.sock"
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket path to listen on.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for the wall-clock executor (default: the \
             host's recommended domain count, capped at 8).")
  in
  let run socket domains db =
    wrap
      (fun _pool hart ->
        let mt = Hart_core.Hart_mt.of_hart hart in
        let store = Hart_server.Server.store_of_hart mt in
        let wall = Hart_async.Scheduler.Wall.create () in
        let stats = { Hart_server.Server.commands = 0; batches = 0 } in
        let srv = Hart_server.Server.serve_unix ~stats ~wall ~path:socket store in
        Printf.printf "serving %s on %s (%d key(s) loaded; ctrl-C to stop)\n%!"
          db socket (Hart.count hart);
        Sys.set_signal Sys.sigint
          (Sys.Signal_handle
             (fun _ -> try Unix.close srv with Unix.Unix_error _ -> ()));
        Hart_async.Scheduler.Wall.run ?domains wall;
        Printf.printf "\nserved %d command(s) in %d write batch(es); saving %s\n%!"
          stats.Hart_server.Server.commands stats.Hart_server.Server.batches db;
        Ok ())
      db
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the store over a Unix-domain socket speaking a RESP subset \
          (GET/SET/DEL/SCAN/PING/QUIT), with per-connection fibers, request \
          pipelining and per-stripe write batching on the concurrent front \
          end. Ctrl-C stops accepting, drains live connections and saves \
          the pool image back to $(b,--db).")
    Term.(const run $ socket $ domains $ db_arg)

let loadgen_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Aim at a running server ($(b,hart_cli serve)) on this socket. \
             Default: an in-process loopback store, freshly preloaded.")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"F"
          ~doc:"Scale the per-connection request count (default 20k).")
  in
  let conns =
    Arg.(
      value
      & opt (some string) None
      & info [ "conns" ] ~docv:"N,N,..."
          ~doc:"Connection counts to sweep (default 1,2,4).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the results as JSON (BENCH_server.json format).")
  in
  let run socket scale conns json =
    ok_or_die
      (if scale <= 0. then Error "scale must be positive"
       else begin
         let conn_counts =
           Option.map
             (fun s ->
               List.map
                 (fun w ->
                   match int_of_string_opt w with
                   | Some n when n > 0 -> n
                   | Some _ | None ->
                       failwith
                         (Printf.sprintf "bad --conns element %S" w))
                 (String.split_on_char ',' s))
             conns
         in
         let target =
           match socket with
           | None -> Hart_harness.Exp_server.Loopback
           | Some p -> Hart_harness.Exp_server.Socket p
         in
         match
           Hart_harness.Exp_server.run ?json_path:json ?conn_counts ~target
             ~scale ()
         with
         | (_ : Hart_harness.Exp_server.run_result list) -> Ok ()
         | exception Failure msg -> Error msg
       end)
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Open-loop load generator for the KV service: fixed request \
          schedule at 70% of a per-run calibrated rate, latency measured \
          from scheduled send to reply (queueing delay included), reported \
          as throughput plus p50/p99/p999 per connection count.")
    Term.(const run $ socket $ scale $ conns $ json)

(* ------------------------------------------------------------------ *)
(* fsck / scrub                                                        *)

let finding_json (f : Hart_error.finding) =
  let open Hart_harness.Report.Json in
  Obj
    [
      ("site", Str (Format.asprintf "%a" Hart_error.pp_site f.Hart_error.f_site));
      ("action", Str (Hart_error.action_name f.Hart_error.f_action));
      ("detail", Str f.Hart_error.f_detail);
      ("keys", List (List.map (fun k -> Str k) f.Hart_error.f_keys));
      ("capacity", Int f.Hart_error.f_capacity);
    ]

let integrity_report ~tool ~db hart findings =
  let repaired, quarantined, detected = Hart_error.partition findings in
  let open Hart_harness.Report.Json in
  Obj
    [
      ("tool", Str tool);
      ("db", Str db);
      ("keys", Int (Hart.count hart));
      ("checksums", Bool (Hart.checksums hart));
      ("clean", Bool (findings = []));
      ("repaired", Int (List.length repaired));
      ("quarantined", Int (List.length quarantined));
      ("detected", Int (List.length detected));
      ("findings", List (List.map finding_json findings));
    ]

let integrity_cmd ~tool ~doc ~deep =
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"PATH"
          ~doc:
            "Write the integrity report as a JSON object to $(docv) \
             (findings, partition counts, a $(b,clean) flag).")
  in
  let run json_out db =
    ok_or_die
      (try
         if not (Sys.file_exists db) then
           Error (Printf.sprintf "no store at %s" db)
         else begin
           let pool = Pmem.load (Meter.create Latency.c300_300) db in
           (* a quarantining mount: media faults in the image become
              findings instead of aborting the check *)
           let hart = Hart.recover ~quarantine:true pool in
           let findings =
             Hart.quarantines hart
             @ (if deep then Hart.fsck ~deep:true hart else Hart.scrub hart)
           in
           List.iter
             (fun f -> Format.printf "%a@." Hart_error.pp_finding f)
             findings;
           let repaired, quarantined, detected =
             Hart_error.partition findings
           in
           Printf.printf
             "%s: %d key(s), %d finding(s) — %d repaired, %d quarantined, %d \
              detected\n"
             tool (Hart.count hart) (List.length findings)
             (List.length repaired) (List.length quarantined)
             (List.length detected);
           (match json_out with
           | None -> ()
           | Some path ->
               Hart_harness.Report.Json.write path
                 (integrity_report ~tool ~db hart findings));
           (* repairs were persisted into the pool as they were made;
              write the healed image back *)
           close_store pool db;
           if detected = [] then Ok ()
           else
             Error
               (Printf.sprintf "%d finding(s) detected but not repairable"
                  (List.length detected))
         end
       with
      | Hart_error.Error e -> Error (Hart_error.to_string e)
      | Pmem.Media_poisoned { off; line } ->
          Error
            (Printf.sprintf "poisoned media line %d (offset %d): pool \
                             unreadable" line off)
      | Invalid_argument m | Failure m | Sys_error m -> Error m)
  in
  Cmd.v (Cmd.info tool ~doc) Term.(const run $ json_out $ db_arg)

let fsck_cmd =
  integrity_cmd ~tool:"fsck" ~deep:true
    ~doc:
      "Check and self-heal a store image: quarantining mount, media \
       attribution, cross-structure invariants and the deep checksum walk. \
       Repairs are written back; exit is nonzero only when unrepairable \
       corruption remains."

let scrub_cmd =
  integrity_cmd ~tool:"scrub" ~deep:false
    ~doc:
      "Online integrity pass: fsck without the deep checksum walk — the \
       cheap scan a store would run periodically."

let fault_cmd =
  let workload =
    let all = List.map (fun (n, _, _) -> n) Hart_fault.Fault.builtin_workloads in
    let doc =
      Printf.sprintf
        "Workload to sweep (one of %s); omit to run the full gate."
        (String.concat ", " all)
    in
    Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"NAME" ~doc)
  in
  let target =
    let all =
      List.map
        (fun t -> t.Hart_fault.Fault.target_name)
        Hart_fault.Fault.all_targets
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "target" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Index to sweep (one of %s); omit for all."
               (String.concat ", " all)))
  in
  let torn =
    Arg.(
      value
      & opt (some int64) None
      & info [ "torn" ] ~docv:"SEED"
          ~doc:
            "Also evict a pseudo-random half of the dirty lines at each \
             crash, seeded with $(docv).")
  in
  let adversarial =
    Arg.(
      value & flag
      & info [ "adversarial" ]
          ~doc:
            "Adversarial torn sweep: one pass evicting exactly the \
             commit-point line the crash interrupted, then several \
             random-subset passes with derived seeds. Overrides \
             $(b,--torn).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"PATH"
          ~doc:
            "Write every violating schedule's replay coordinates as a \
             JSON array to $(docv) (an empty sweep writes []); meant \
             for CI to diff against an empty baseline.")
  in
  let no_nested =
    Arg.(
      value & flag
      & info [ "no-nested" ] ~doc:"Skip crash-during-recovery schedules.")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"K"
          ~doc:
            "Snapshot the pool every $(docv) flushes of the dry run and \
             replay each crash schedule from the nearest snapshot instead \
             of re-executing the whole prefix (O(F·K) instead of O(F²)).")
  in
  let keep_going =
    Arg.(
      value & flag
      & info [ "keep-going" ]
        ~doc:
          "Collect and report every violating schedule instead of \
           stopping at the first; exit nonzero if any were found.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "With $(docv) > 1, run the deterministic concurrent \
             explorer instead: $(docv) simulated domains (2-4) drive \
             the concurrent HART front end under a seed-replayable \
             interleaving, every flush boundary is crashed with \
             operations in flight, and recovery is checked against the \
             linearization-set oracle.")
  in
  let index =
    let all =
      List.map
        (fun t -> t.Hart_fault.Fault_mt.mt_name)
        Hart_fault.Fault_mt.all_mt_targets
    in
    Arg.(
      value & opt string "hart"
      & info [ "index" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf
               "Concurrent index for the $(b,--domains) sweep (one of %s)."
               (String.concat ", " all)))
  in
  let nested_mt =
    Arg.(
      value & flag
      & info [ "nested-mt" ]
          ~doc:
            "With $(b,--domains) > 1, also re-crash every passing \
             schedule's single-domain recovery at each of its own flush \
             boundaries, recover again, and check the doubly-recovered \
             state against the same linearization-set oracle.")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "With $(b,--domains) > 1, delta-debug any violating workload \
             to a locally minimal reproducer (fewer domains, ops, keys; \
             canonical seed), re-verifying each candidate by \
             deterministic replay, and attach the shrunk (seed, \
             schedule, workload) coordinates to the violation (implies \
             $(b,--keep-going) for the concurrent sweep).")
  in
  let mt_workload =
    Arg.(
      value & opt string "default"
      & info [ "mt-workload" ] ~docv:"KIND"
          ~doc:
            "Workload for the $(b,--domains) sweep: $(b,default) \
             (disjoint per-domain prefixes), $(b,collide) (scripted \
             same-stripe collisions), $(b,split-race) (one FPTree leaf \
             driven past capacity so splits race fresh writers; pair \
             with $(b,--index fptree)), or $(b,gen) (seeded random op \
             mix, swept over $(b,--gen-seeds) seeds).")
  in
  let server =
    Arg.(
      value & flag
      & info [ "server" ]
          ~doc:
            "Deterministic simulation test of the full KV server stack: \
             $(b,--clients) pipelined RESP sessions drive per-connection \
             server fibers through a seeded simulated network (arbitrary \
             fragmentation, partial writes, mid-session drops) over the \
             concurrent HART; every flush boundary is crashed with \
             requests in flight in every layer, recovered, and checked \
             against a session-linearizability oracle (ack implies \
             durable; unacked operations land as an admissible subset). \
             Sweeps a clean-session and a dropped-session workload, in \
             Clean mode plus Torn when $(b,--torn) is given.")
  in
  let clients =
    Arg.(
      value & opt int 2
      & info [ "clients" ] ~docv:"N"
          ~doc:
            "Concurrent client sessions for the $(b,--server) sweep \
             (2-4).")
  in
  let gen_seeds =
    Arg.(
      value & opt int 3
      & info [ "gen-seeds" ] ~docv:"N"
          ~doc:
            "With $(b,--mt-workload gen), sweep $(docv) generated \
             workloads seeded $(b,--seed), $(b,--seed)+1, ...")
  in
  let seed =
    Arg.(
      value & opt int64 42L
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Interleaving seed for $(b,--domains); a (seed, schedule) \
             pair names one exact execution.")
  in
  let max_schedules =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-schedules" ] ~docv:"M"
          ~doc:
            "Evenly subsample the $(b,--domains) sweep to at most \
             $(docv) crash schedules (CI budget); omit for the \
             exhaustive sweep.")
  in
  let media_faults =
    Arg.(
      value & opt int 0
      & info [ "media-faults" ] ~docv:"N"
          ~doc:
            "With $(docv) > 0, run the media-fault sweep instead: \
             $(docv) seeded corruption sites (bit flips, line clobbers, \
             stuck-at lines, poisoned reads) per target x workload, each \
             mounted fault-tolerantly and checked against the oracle — \
             every injected fault must be repaired, quarantined-and-\
             reported, or raise a typed error; a silent wrong answer is \
             a violation. Targets default to the media roster (all \
             indexes plus checksummed HART).")
  in
  let media_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "media-json" ] ~docv:"PATH"
          ~doc:
            "With $(b,--media-faults), also write the full per-site \
             sweep reports as JSON to $(docv) (FAULT_media.json \
             format).")
  in
  let run workload target torn adversarial json_out no_nested checkpoint_every
      keep_going domains index nested_mt shrink mt_workload gen_seeds seed
      max_schedules media_faults media_json server clients =
    ok_or_die
      (try
         if server then begin
           if clients < 1 || clients > 4 then
             failwith "--clients supports 1-4 simulated sessions";
           let keep_going = keep_going || shrink in
           let modes =
             match torn with
             | None -> [ Hart_pmem.Pmem.Clean ]
             | Some tseed ->
                 [
                   Hart_pmem.Pmem.Clean;
                   Hart_pmem.Pmem.Torn { seed = tseed; fraction = 0.5 };
                 ]
           in
           let workloads =
             let setup, scripts =
               Hart_fault.Fault_server.default_workload ~clients
                 ~ops_per_client:28
             in
             let dsetup, dscripts, drops =
               Hart_fault.Fault_server.drop_workload ~clients
                 ~ops_per_client:28
             in
             [
               ("srv-default", setup, scripts, None);
               ("srv-drop", dsetup, dscripts, Some drops);
             ]
           in
           let reports =
             List.concat_map
               (fun mode ->
                 List.map
                   (fun (name, setup, scripts, drops) ->
                     let r =
                       Hart_fault.Fault_server.explore ~mode ~keep_going
                         ?max_schedules ?drops ~seed ~clients ~workload:name
                         ~setup scripts
                     in
                     Format.printf "%a@." Hart_fault.Fault_server.pp_report r;
                     if
                       shrink && drops = None
                       && r.Hart_fault.Fault_server.violations <> []
                     then begin
                       match
                         Hart_fault.Fault_server.shrink ~mode ~seed ~setup
                           scripts
                       with
                       | None ->
                           Format.printf
                             "shrink: violation did not reproduce under \
                              replay@.";
                           r
                       | Some s ->
                           Format.printf
                             "shrink: %d candidate replays, %d accepted@.%a@."
                             s.Hart_fault.Fault_mt.s_checks
                             s.Hart_fault.Fault_mt.s_accepted
                             Hart_fault.Fault.pp_repro
                             s.Hart_fault.Fault_mt.s_repro;
                           {
                             r with
                             Hart_fault.Fault_server.violations =
                               List.map
                                 (fun v ->
                                   {
                                     v with
                                     Hart_fault.Fault.v_repro =
                                       Some s.Hart_fault.Fault_mt.s_repro;
                                   })
                                 r.Hart_fault.Fault_server.violations;
                           }
                     end
                     else r)
                   workloads)
               modes
           in
           let vs =
             List.concat_map
               (fun r -> r.Hart_fault.Fault_server.violations)
               reports
           in
           (match json_out with
           | None -> ()
           | Some path ->
               let oc = open_out path in
               output_string oc (Hart_fault.Fault.violation_list_json vs);
               close_out oc);
           match vs with
           | [] ->
               print_endline "all server crash schedules consistent";
               Ok ()
           | vs ->
               List.iter
                 (fun v ->
                   Printf.eprintf "violation: %s\n"
                     (Hart_fault.Fault.violation_message v))
                 vs;
               Error
                 (Printf.sprintf "%d violating schedule(s)" (List.length vs))
         end
         else if domains > 1 then begin
           if domains > 4 then failwith "--domains supports 2-4 simulated domains";
           let mode =
             match torn with
             | None -> Hart_pmem.Pmem.Clean
             | Some seed -> Hart_pmem.Pmem.Torn { seed; fraction = 0.5 }
           in
           let mt_target =
             match Hart_fault.Fault_mt.find_mt_target index with
             | Some t -> t
             | None -> failwith (Printf.sprintf "unknown concurrent index %S" index)
           in
           let workloads =
             match mt_workload with
             | "default" ->
                 [
                   ( "mt-default",
                     Hart_fault.Fault_mt.default_workload ~domains
                       ~ops_per_domain:6 );
                 ]
             | "collide" ->
                 [
                   ( "mt-collide",
                     Hart_fault.Fault_mt.collide_workload ~domains
                       ~ops_per_domain:6 );
                 ]
             | "split-race" ->
                 [
                   ( "mt-split-race",
                     Hart_fault.Fault_mt.split_race_workload ~domains
                       ~ops_per_domain:6 );
                 ]
             | "gen" ->
                 List.init (max 1 gen_seeds) (fun k ->
                     let s = Int64.add seed (Int64.of_int k) in
                     ( Printf.sprintf "mt-gen#%Ld" s,
                       Hart_fault.Fault_mt.gen_workload ~seed:s ~domains
                         ~ops_per_domain:6 ))
             | w ->
                 failwith
                   (Printf.sprintf
                      "unknown --mt-workload %S (default, collide, \
                       split-race, gen)" w)
           in
           let keep_going = keep_going || shrink in
           let reports =
             List.map
               (fun (name, (setup, scripts)) ->
                 let r =
                   Hart_fault.Fault_mt.explore ~target:mt_target ~mode
                     ~keep_going ~nested:nested_mt ?max_schedules
                     ?checkpoint_every ~seed ~domains ~workload:name ~setup
                     scripts
                 in
                 Format.printf "%a@." Hart_fault.Fault_mt.pp_report r;
                 let r =
                   if shrink && r.Hart_fault.Fault_mt.violations <> [] then begin
                     match
                       Hart_fault.Fault_mt.shrink ~target:mt_target ~mode
                         ?checkpoint_every ~seed ~setup scripts
                     with
                     | None ->
                         Format.printf
                           "shrink: violation did not reproduce under \
                            replay@.";
                         r
                     | Some s ->
                         Format.printf
                           "shrink: %d candidate replays, %d accepted@.%a@."
                           s.Hart_fault.Fault_mt.s_checks
                           s.Hart_fault.Fault_mt.s_accepted
                           Hart_fault.Fault.pp_repro
                           s.Hart_fault.Fault_mt.s_repro;
                         {
                           r with
                           Hart_fault.Fault_mt.violations =
                             List.map
                               (fun v ->
                                 {
                                   v with
                                   Hart_fault.Fault.v_repro =
                                     Some s.Hart_fault.Fault_mt.s_repro;
                                 })
                               r.Hart_fault.Fault_mt.violations;
                         }
                   end
                   else r
                 in
                 r)
               workloads
           in
           let vs =
             List.concat_map
               (fun r -> r.Hart_fault.Fault_mt.violations)
               reports
           in
           (match json_out with
           | None -> ()
           | Some path ->
               let oc = open_out path in
               output_string oc (Hart_fault.Fault.violation_list_json vs);
               close_out oc);
           match vs with
           | [] ->
               print_endline "all concurrent crash schedules consistent";
               Ok ()
           | vs ->
               List.iter
                 (fun v ->
                   Printf.eprintf "violation: %s\n"
                     (Hart_fault.Fault.violation_message v))
                 vs;
               Error (Printf.sprintf "%d violating schedule(s)" (List.length vs))
         end
         else if media_faults > 0 then begin
           let targets =
             match target with
             | None -> Hart_fault.Fault.media_targets
             | Some n -> (
                 match Hart_fault.Fault.find_target n with
                 | Some t -> [ t ]
                 | None -> failwith (Printf.sprintf "unknown target %S" n))
           in
           let workloads =
             match workload with
             | None -> Hart_fault.Fault.builtin_workloads
             | Some n -> (
                 match Hart_fault.Fault.find_workload n with
                 | Some w -> [ w ]
                 | None -> failwith (Printf.sprintf "unknown workload %S" n))
           in
           let reports =
             List.concat_map
               (fun t ->
                 List.map
                   (fun (name, setup, ops) ->
                     let r =
                       Hart_fault.Fault.explore_media ~sites:media_faults
                         ~base_seed:seed ~setup ~keep_going ~workload:name t
                         ops
                     in
                     Format.printf "%a@." Hart_fault.Fault.pp_media_report r;
                     r)
                   workloads)
               targets
           in
           (match media_json with
           | None -> ()
           | Some path ->
               let oc = open_out path in
               output_string oc (Hart_fault.Fault.media_reports_json reports);
               close_out oc);
           (match json_out with
           | None -> ()
           | Some path ->
               let oc = open_out path in
               output_string oc
                 (Hart_fault.Fault.media_violations_to_json reports);
               close_out oc);
           let vs =
             List.concat_map
               (fun r -> r.Hart_fault.Fault.m_violations)
               reports
           in
           match vs with
           | [] ->
               print_endline "no silent wrong answers under media faults";
               Ok ()
           | vs ->
               List.iter
                 (fun v ->
                   Printf.eprintf "violation: %s\n"
                     (Hart_fault.Fault.violation_message v))
                 vs;
               Error
                 (Printf.sprintf "%d silent-wrong-answer violation(s)"
                    (List.length vs))
         end
         else
         let targets =
           match target with
           | None -> Hart_fault.Fault.all_targets
           | Some n -> (
               match Hart_fault.Fault.find_target n with
               | Some t -> [ t ]
               | None -> failwith (Printf.sprintf "unknown target %S" n))
         in
         let workloads =
           match workload with
           | None -> Hart_fault.Fault.builtin_workloads
           | Some n -> (
               match Hart_fault.Fault.find_workload n with
               | Some w -> [ w ]
               | None -> failwith (Printf.sprintf "unknown workload %S" n))
         in
         let mode =
           match torn with
           | None -> Hart_pmem.Pmem.Clean
           | Some seed -> Hart_pmem.Pmem.Torn { seed; fraction = 0.5 }
         in
         let reports = ref [] in
         List.iter
           (fun t ->
             List.iter
               (fun (name, setup, ops) ->
                 let rs =
                   if adversarial then
                     Hart_fault.Fault.explore_adversarial
                       ~nested:(not no_nested) ~setup ?checkpoint_every
                       ~keep_going ~workload:name t ops
                   else
                     [
                       Hart_fault.Fault.explore ~mode ~nested:(not no_nested)
                         ~setup ?checkpoint_every ~keep_going ~workload:name t
                         ops;
                     ]
                 in
                 List.iter
                   (fun r -> Format.printf "%a@." Hart_fault.Fault.pp_report r)
                   rs;
                 reports := !reports @ rs)
               workloads)
           targets;
         (match json_out with
         | None -> ()
         | Some path ->
             let oc = open_out path in
             output_string oc (Hart_fault.Fault.violations_to_json !reports);
             close_out oc);
         let vs =
           List.concat_map (fun r -> r.Hart_fault.Fault.violations) !reports
         in
         match vs with
         | [] ->
             print_endline "all crash schedules consistent";
             Ok ()
         | vs ->
             List.iter
               (fun v ->
                 Printf.eprintf "violation: %s\n"
                   (Hart_fault.Fault.violation_message v))
               vs;
             Error (Printf.sprintf "%d violating schedule(s)" (List.length vs))
       with
      | Hart_fault.Fault.Violation msg -> Error msg
      | Failure msg -> Error msg)
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:
         "Exhaustively sweep crash schedules: crash at every flush boundary \
          of a scripted workload, recover, and check integrity plus \
          prefix-consistency against a model. Nonzero exit on the first \
          violating schedule (or, with $(b,--keep-going), after reporting \
          all of them).")
    Term.(
      const run $ workload $ target $ torn $ adversarial $ json_out $ no_nested
      $ checkpoint_every $ keep_going $ domains $ index $ nested_mt $ shrink
      $ mt_workload $ gen_seeds $ seed $ max_schedules $ media_faults
      $ media_json $ server $ clients)

let () =
  let commands =
    [
      set_cmd;
      get_cmd;
      del_cmd;
      range_cmd;
      list_cmd;
      stats_cmd;
      bench_cmd;
      parallel_cmd;
      ycsb_cmd;
      recovery_cmd;
      art_nodes_cmd;
      fault_cmd;
      fsck_cmd;
      scrub_cmd;
      serve_cmd;
      loadgen_cmd;
    ]
  in
  let names = List.map Cmd.name commands in
  let listing = String.concat ", " names in
  (* An unknown subcommand should name every available one, not just
     suggest near-misses; cmdliner resolves unambiguous prefixes, so
     only reject words that prefix no command at all. *)
  (if Array.length Sys.argv > 1 then
     let w = Sys.argv.(1) in
     if
       String.length w > 0
       && w.[0] <> '-'
       && not (List.exists (fun n -> String.starts_with ~prefix:w n) names)
     then begin
       Printf.eprintf "hart_cli: unknown command %S\navailable commands: %s\n"
         w listing;
       exit 124
     end);
  let doc = "persistent key-value store over HART (simulated PM)" in
  let info = Cmd.info "hart_cli" ~version:"1.0.0" ~doc in
  (* bare `hart_cli` shows the full help (which enumerates COMMANDS)
     instead of a bare usage error *)
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit (Cmd.eval' (Cmd.group info ~default commands))
