test/test_baselines.ml: Alcotest Hart_baselines Hart_core Hart_pmem Hart_util List Map Printf QCheck QCheck_alcotest String
