test/test_util.ml: Alcotest Array Bytes Fun Hart_util Int64 List QCheck QCheck_alcotest
