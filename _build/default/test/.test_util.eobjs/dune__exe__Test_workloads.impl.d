test/test_workloads.ml: Alcotest Array Char Hart_baselines Hart_core Hart_pmem Hart_util Hart_workloads Hashtbl List Option Printf String
