test/test_harness.ml: Alcotest Array Fun Hart_baselines Hart_harness Hart_pmem Hart_util Hart_workloads List Printf Unix
