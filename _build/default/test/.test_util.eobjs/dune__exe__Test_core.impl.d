test/test_core.ml: Alcotest Array Atomic Char Domain Filename Format Hart_core Hart_pmem Hart_util Hashtbl Int64 List Map Option Printf QCheck QCheck_alcotest String Sys Unix
