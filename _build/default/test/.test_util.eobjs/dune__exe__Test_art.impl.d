test/test_art.ml: Alcotest Char Hart_art Hart_pmem Hart_util List Map Printf QCheck QCheck_alcotest String
