test/test_pmem.ml: Alcotest Array Filename Hart_pmem Hart_util Int64 List Printf QCheck QCheck_alcotest Sys
