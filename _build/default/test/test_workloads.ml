module Keygen = Hart_workloads.Keygen
module Workload = Hart_workloads.Workload
module Index_intf = Hart_baselines.Index_intf

let distinct keys =
  let h = Hashtbl.create (Array.length keys) in
  Array.for_all
    (fun k ->
      if Hashtbl.mem h k then false
      else begin
        Hashtbl.add h k ();
        true
      end)
    keys

(* ------------------------------------------------------------------ *)
(* Key generators                                                      *)

let test_sequential_ordered () =
  let keys = Keygen.generate Keygen.Sequential 5000 in
  Alcotest.(check int) "count" 5000 (Array.length keys);
  Alcotest.(check bool) "distinct" true (distinct keys);
  for i = 1 to 4999 do
    if not (keys.(i - 1) < keys.(i)) then Alcotest.failf "not ordered at %d" i
  done;
  Array.iter
    (fun k -> Alcotest.(check int) "fixed width" 8 (String.length k))
    keys

let test_sequential_shares_prefixes () =
  let keys = Keygen.generate Keygen.Sequential 100 in
  (* the first 62 keys share the 7-byte prefix: only the last byte moves *)
  let prefix k = String.sub k 0 7 in
  Alcotest.(check string) "stable prefix" (prefix keys.(0)) (prefix keys.(61))

let test_random_properties () =
  let keys = Keygen.generate Keygen.Random 5000 in
  Alcotest.(check bool) "distinct" true (distinct keys);
  Array.iter
    (fun k ->
      let n = String.length k in
      if n < 5 || n > 16 then Alcotest.failf "length %d outside 5..16" n;
      String.iter
        (fun c ->
          let ok =
            (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')
            || (c >= '0' && c <= '9')
          in
          if not ok then Alcotest.failf "bad character %C" c)
        k)
    keys

let test_random_deterministic () =
  let a = Keygen.generate ~seed:7L Keygen.Random 1000 in
  let b = Keygen.generate ~seed:7L Keygen.Random 1000 in
  let c = Keygen.generate ~seed:8L Keygen.Random 1000 in
  Alcotest.(check bool) "same seed same keys" true (a = b);
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_dictionary_properties () =
  let keys = Keygen.generate Keygen.Dictionary 20_000 in
  Alcotest.(check bool) "distinct" true (distinct keys);
  Array.iter
    (fun k ->
      let n = String.length k in
      if n < 1 || n > 24 then Alcotest.failf "word length %d outside 1..24" n;
      String.iter
        (fun c -> if not (c >= 'a' && c <= 'z') then Alcotest.failf "bad char %C" c)
        k)
    keys;
  (* first-letter distribution must be skewed like English: the most
     common initial should cover well over 1/26th of the words *)
  let firsts = Array.make 26 0 in
  Array.iter
    (fun k -> firsts.(Char.code k.[0] - Char.code 'a') <- firsts.(Char.code k.[0] - Char.code 'a') + 1)
    keys;
  let top = Array.fold_left max 0 firsts in
  Alcotest.(check bool) "skewed initials" true (top > 20_000 / 26 * 2)

let test_dictionary_universe () =
  Alcotest.(check bool) "supports the paper's 466k words" true
    (Keygen.dictionary_universe >= 466_544);
  Alcotest.(check bool) "overflow rejected" true
    (match Keygen.generate Keygen.Dictionary (Keygen.dictionary_universe + 1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_value_sizes () =
  Alcotest.(check int) "value_for is 7 bytes (Val8 class)" 7
    (String.length (Keygen.value_for 123));
  Alcotest.(check int) "wide_value_for is 15 bytes (Val16 class)" 15
    (String.length (Keygen.wide_value_for 123))

let test_spec_names () =
  List.iter
    (fun spec ->
      match Keygen.of_name (Keygen.name spec) with
      | Some s -> Alcotest.(check string) "roundtrip" (Keygen.name spec) (Keygen.name s)
      | None -> Alcotest.fail "name roundtrip failed")
    Keygen.all;
  Alcotest.(check bool) "unknown rejected" true (Keygen.of_name "zipf" = None)

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)

let test_basic_traces () =
  let keys = Keygen.generate Keygen.Random 500 in
  let ins = Workload.insert_trace keys Keygen.value_for in
  Alcotest.(check int) "one insert per key" 500 (Array.length ins);
  let sea = Workload.search_trace keys in
  let searched =
    Array.map (function Workload.Search k -> k | _ -> Alcotest.fail "not a search") sea
  in
  Alcotest.(check bool) "search covers all keys" true
    (List.sort compare (Array.to_list searched)
    = List.sort compare (Array.to_list keys));
  Alcotest.(check bool) "search order shuffled" true (searched <> keys)

let test_ycsb_mix_ratios () =
  let preloaded = Keygen.generate Keygen.Random 2000 in
  let fresh = Keygen.generate ~seed:99L Keygen.Random 20_000 in
  List.iter
    (fun mix ->
      let n_ops = 20_000 in
      let trace = Workload.ycsb mix ~preloaded ~fresh ~n_ops in
      let i = ref 0 and s = ref 0 and u = ref 0 and d = ref 0 in
      Array.iter
        (function
          | Workload.Insert _ -> incr i
          | Workload.Search _ -> incr s
          | Workload.Update _ -> incr u
          | Workload.Delete _ -> incr d)
        trace;
      let close pct count =
        abs ((count * 100 / n_ops) - pct) <= 2 (* within 2 points *)
      in
      if not (close mix.Workload.insert_pct !i) then
        Alcotest.failf "%s: insert share %d" mix.Workload.mix_name !i;
      if not (close mix.Workload.search_pct !s) then
        Alcotest.failf "%s: search share %d" mix.Workload.mix_name !s;
      if not (close mix.Workload.update_pct !u) then
        Alcotest.failf "%s: update share %d" mix.Workload.mix_name !u;
      if not (close mix.Workload.delete_pct !d) then
        Alcotest.failf "%s: delete share %d" mix.Workload.mix_name !d)
    Workload.mixes

let test_ycsb_uniform_coverage () =
  let preloaded = Keygen.generate Keygen.Random 100 in
  let fresh = Keygen.generate ~seed:99L Keygen.Random 1 in
  let trace = Workload.ycsb Workload.read_modified_write ~preloaded ~fresh ~n_ops:10_000 in
  let seen = Hashtbl.create 128 in
  Array.iter
    (function
      | Workload.Search k | Workload.Update (k, _) -> Hashtbl.replace seen k ()
      | Workload.Insert _ | Workload.Delete _ -> ())
    trace;
  Alcotest.(check bool) "uniform distribution touches every record" true
    (Hashtbl.length seen = 100)

let test_ycsb_validation () =
  let preloaded = Keygen.generate Keygen.Random 100 in
  Alcotest.(check bool) "too few fresh keys rejected" true
    (match
       Workload.ycsb Workload.write_intensive ~preloaded ~fresh:[||] ~n_ops:1000
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "empty preload rejected" true
    (match
       Workload.ycsb Workload.read_intensive ~preloaded:[||]
         ~fresh:(Keygen.generate Keygen.Random 1000) ~n_ops:1000
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_zipf_sampler_shape () =
  let rng = Hart_util.Rng.create 0x21FL in
  let sample = Workload.zipf_sampler rng ~n:1000 ~s:0.99 in
  let counts = Array.make 1000 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let k = sample () in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 1000);
    counts.(k) <- counts.(k) + 1
  done;
  (* rank 0 must dominate: ~1/H_1000 = 13% of mass at s=0.99 *)
  Alcotest.(check bool)
    (Printf.sprintf "head heavy (rank0=%d)" counts.(0))
    true
    (counts.(0) > draws / 20);
  Alcotest.(check bool) "monotone-ish head" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "tail thin" true (counts.(999) < counts.(0) / 10)

let test_zipf_sampler_validation () =
  let rng = Hart_util.Rng.create 1L in
  Alcotest.(check bool) "empty support rejected" true
    (match Workload.zipf_sampler rng ~n:0 ~s:1.0 () with
    | (_ : int) -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad exponent rejected" true
    (match Workload.zipf_sampler rng ~n:10 ~s:(-1.0) () with
    | (_ : int) -> false
    | exception Invalid_argument _ -> true)

let test_ycsb_zipfian_skew () =
  let preloaded = Keygen.generate Keygen.Random 1000 in
  let fresh = Keygen.generate ~seed:99L Keygen.Random 1 in
  let trace =
    Workload.ycsb ~dist:(Workload.Zipfian 0.99) Workload.read_modified_write
      ~preloaded ~fresh ~n_ops:20_000
  in
  let counts = Hashtbl.create 128 in
  Array.iter
    (function
      | Workload.Search k | Workload.Update (k, _) ->
          Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0)
      | Workload.Insert _ | Workload.Delete _ -> ())
    trace;
  let top =
    Hashtbl.fold (fun _ c acc -> max acc c) counts 0
  in
  (* uniform would give ~20 per key; zipf must concentrate far more *)
  Alcotest.(check bool)
    (Printf.sprintf "hottest key hit %d times" top)
    true (top > 200)

let test_apply_counts_hits () =
  let pool = Hart_pmem.Pmem.create (Hart_pmem.Meter.create Hart_pmem.Latency.c300_100) in
  let ops = Hart_baselines.Hart_index.ops (Hart_core.Hart.create pool) in
  let keys = Keygen.generate Keygen.Random 100 in
  let hits = Workload.apply ops (Workload.insert_trace keys Keygen.value_for) in
  Alcotest.(check int) "all inserts counted" 100 hits;
  let hits = Workload.apply ops (Workload.search_trace keys) in
  Alcotest.(check int) "all searches hit" 100 hits;
  let miss_trace = [| Workload.Search "absent-key"; Workload.Delete "nope" |] in
  Alcotest.(check int) "misses not counted" 0 (Workload.apply ops miss_trace)

let () =
  Alcotest.run "workloads"
    [
      ( "keygen",
        [
          Alcotest.test_case "sequential ordered" `Quick test_sequential_ordered;
          Alcotest.test_case "sequential prefixes" `Quick test_sequential_shares_prefixes;
          Alcotest.test_case "random properties" `Quick test_random_properties;
          Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "dictionary properties" `Quick test_dictionary_properties;
          Alcotest.test_case "dictionary universe" `Quick test_dictionary_universe;
          Alcotest.test_case "value sizes" `Quick test_value_sizes;
          Alcotest.test_case "spec names" `Quick test_spec_names;
        ] );
      ( "traces",
        [
          Alcotest.test_case "basic traces" `Quick test_basic_traces;
          Alcotest.test_case "ycsb mix ratios" `Quick test_ycsb_mix_ratios;
          Alcotest.test_case "ycsb uniform coverage" `Quick test_ycsb_uniform_coverage;
          Alcotest.test_case "ycsb validation" `Quick test_ycsb_validation;
          Alcotest.test_case "zipf sampler shape" `Quick test_zipf_sampler_shape;
          Alcotest.test_case "zipf sampler validation" `Quick test_zipf_sampler_validation;
          Alcotest.test_case "ycsb zipfian skew" `Quick test_ycsb_zipfian_skew;
          Alcotest.test_case "apply counts hits" `Quick test_apply_counts_hits;
        ] );
    ]
