module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Pmem = Hart_pmem.Pmem
module Rng = Hart_util.Rng
module Woart = Hart_baselines.Woart
module Wort = Hart_baselines.Wort
module Nv_tree = Hart_baselines.Nv_tree
module Wb_tree = Hart_baselines.Wb_tree
module Cdds = Hart_baselines.Cdds_btree
module Art_cow = Hart_baselines.Art_cow
module Fptree = Hart_baselines.Fptree
module Hart_index = Hart_baselines.Hart_index
module Index_intf = Hart_baselines.Index_intf
module Hart = Hart_core.Hart
module SMap = Map.Make (String)

let fresh_pool () = Pmem.create (Meter.create Latency.c300_300)

let make_woart () = Woart.ops (Woart.create (fresh_pool ()))
let make_wort () = Wort.ops (Wort.create (fresh_pool ()))
let make_nv () = Nv_tree.ops (Nv_tree.create (fresh_pool ()))
let make_wb () = Wb_tree.ops (Wb_tree.create (fresh_pool ()))
let make_cdds () = Cdds.ops (Cdds.create (fresh_pool ()))
let make_cow () = Art_cow.ops (Art_cow.create (fresh_pool ()))
let make_fptree () = Fptree.ops (Fptree.create (fresh_pool ()))
let make_hart () = Hart_index.ops (Hart.create (fresh_pool ()))

let all_makers =
  [
    ("HART", make_hart);
    ("WOART", make_woart);
    ("ART+CoW", make_cow);
    ("FPTree", make_fptree);
    ("WORT", make_wort);
    ("NV-Tree", make_nv);
    ("wB+Tree", make_wb);
    ("CDDS", make_cdds);
  ]

(* ------------------------------------------------------------------ *)
(* Uniform behaviour of all four trees                                 *)

let basic_roundtrip (ops : Index_intf.ops) () =
  ops.insert ~key:"alpha" ~value:"1";
  ops.insert ~key:"beta" ~value:"2";
  ops.insert ~key:"alphabet" ~value:"3";
  Alcotest.(check (option string)) "alpha" (Some "1") (ops.search "alpha");
  Alcotest.(check (option string)) "beta" (Some "2") (ops.search "beta");
  Alcotest.(check (option string)) "alphabet" (Some "3") (ops.search "alphabet");
  Alcotest.(check (option string)) "missing" None (ops.search "gamma");
  Alcotest.(check int) "count" 3 (ops.count ());
  Alcotest.(check bool) "update hit" true (ops.update ~key:"alpha" ~value:"1b");
  Alcotest.(check (option string)) "updated" (Some "1b") (ops.search "alpha");
  Alcotest.(check bool) "update miss" false (ops.update ~key:"nope" ~value:"x");
  Alcotest.(check bool) "delete hit" true (ops.delete "beta");
  Alcotest.(check (option string)) "deleted" None (ops.search "beta");
  Alcotest.(check bool) "delete miss" false (ops.delete "beta");
  Alcotest.(check int) "final count" 2 (ops.count ())

let range_agreement (ops : Index_intf.ops) () =
  let keys = [ "aa"; "ab"; "abc"; "b"; "ba"; "cc"; "cd" ] in
  List.iter (fun k -> ops.insert ~key:k ~value:(String.uppercase_ascii k)) keys;
  let got = ref [] in
  ops.range ~lo:"ab" ~hi:"cc" (fun k _ -> got := k :: !got);
  Alcotest.(check (list string)) "range window" [ "ab"; "abc"; "b"; "ba"; "cc" ]
    (List.sort compare !got)

let bulk_load (ops : Index_intf.ops) () =
  for i = 0 to 1999 do
    ops.insert ~key:(Printf.sprintf "blk%06d" i) ~value:(Printf.sprintf "v%d" i)
  done;
  Alcotest.(check int) "2000 keys" 2000 (ops.count ());
  for i = 0 to 1999 do
    let k = Printf.sprintf "blk%06d" i in
    if ops.search k <> Some (Printf.sprintf "v%d" i) then Alcotest.failf "lost %s" k
  done;
  for i = 0 to 999 do
    ignore (ops.delete (Printf.sprintf "blk%06d" (i * 2)))
  done;
  Alcotest.(check int) "half deleted" 1000 (ops.count ());
  for i = 0 to 1999 do
    let k = Printf.sprintf "blk%06d" i in
    let expect = if i mod 2 = 0 then None else Some (Printf.sprintf "v%d" i) in
    if ops.search k <> expect then Alcotest.failf "wrong state for %s" k
  done

let per_tree_cases name maker =
  [
    Alcotest.test_case (name ^ " roundtrip") `Quick (fun () ->
        basic_roundtrip (maker ()) ());
    Alcotest.test_case (name ^ " range") `Quick (fun () ->
        range_agreement (maker ()) ());
    Alcotest.test_case (name ^ " bulk load") `Quick (fun () ->
        bulk_load (maker ()) ());
  ]

(* ------------------------------------------------------------------ *)
(* Model-based equivalence for every tree                              *)

let key_gen =
  QCheck.Gen.(
    let c = map (fun i -> "ab1".[i]) (int_bound 2) in
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_range 1 6) c))

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> `Insert (k, v)) key_gen (map string_of_int (int_bound 9999)));
        (2, map (fun k -> `Delete k) key_gen);
        (2, map (fun k -> `Search k) key_gen);
        (2, map2 (fun k v -> `Update (k, v)) key_gen (map string_of_int (int_bound 9999)));
      ])

let ops_print ops =
  String.concat "; "
    (List.map
       (function
         | `Insert (k, v) -> Printf.sprintf "I(%S,%S)" k v
         | `Delete k -> Printf.sprintf "D(%S)" k
         | `Search k -> Printf.sprintf "S(%S)" k
         | `Update (k, v) -> Printf.sprintf "U(%S,%S)" k v)
       ops)

let ops_arb = QCheck.make ~print:ops_print QCheck.Gen.(list_size (int_bound 150) op_gen)

let qcheck_tree_vs_map name maker =
  QCheck.Test.make ~count:150
    ~name:(name ^ " behaves like Map under random ops")
    ops_arb
    (fun script ->
      let ops = maker () in
      let model = ref SMap.empty in
      List.for_all
        (function
          | `Insert (k, v) ->
              ops.Index_intf.insert ~key:k ~value:v;
              model := SMap.add k v !model;
              true
          | `Delete k ->
              let expect = SMap.mem k !model in
              model := SMap.remove k !model;
              ops.Index_intf.delete k = expect
          | `Search k -> ops.Index_intf.search k = SMap.find_opt k !model
          | `Update (k, v) ->
              let expect = SMap.mem k !model in
              if expect then model := SMap.add k v !model;
              ops.Index_intf.update ~key:k ~value:v = expect)
        script
      && ops.Index_intf.count () = SMap.cardinal !model
      && SMap.for_all (fun k v -> ops.Index_intf.search k = Some v) !model)

(* ------------------------------------------------------------------ *)
(* FPTree specifics                                                    *)

let test_fptree_split_chain () =
  let pool = fresh_pool () in
  let fp = Fptree.create pool in
  (* force many leaf splits *)
  for i = 0 to 499 do
    Fptree.insert fp ~key:(Printf.sprintf "sp%06d" i) ~value:"v"
  done;
  Fptree.check_integrity fp;
  Alcotest.(check bool) "tree grew inner levels" true (Fptree.height fp > 1);
  (* the chain delivers a full ordered scan *)
  let got = ref [] in
  Fptree.range fp ~lo:"sp000000" ~hi:"sp999999" (fun k _ -> got := k :: !got);
  Alcotest.(check int) "all keys in range" 500 (List.length !got);
  Alcotest.(check (list string)) "ordered"
    (List.init 500 (fun i -> Printf.sprintf "sp%06d" i))
    (List.rev !got)

let test_fptree_update_inplace_flip () =
  let pool = fresh_pool () in
  let fp = Fptree.create pool in
  Fptree.insert fp ~key:"flip" ~value:"old";
  Fptree.insert fp ~key:"flap" ~value:"x";
  ignore (Fptree.update fp ~key:"flip" ~value:"new");
  Alcotest.(check (option string)) "updated" (Some "new") (Fptree.search fp "flip");
  Alcotest.(check (option string)) "sibling" (Some "x") (Fptree.search fp "flap");
  Alcotest.(check int) "count stable" 2 (Fptree.count fp);
  Fptree.check_integrity fp

let test_fptree_update_on_full_leaf () =
  let pool = fresh_pool () in
  let fp = Fptree.create pool in
  (* fill one leaf exactly to capacity *)
  for i = 0 to Fptree.leaf_cap - 1 do
    Fptree.insert fp ~key:(Printf.sprintf "fl%03d" i) ~value:"a"
  done;
  (* updating with a full bitmap forces a split-then-update *)
  ignore (Fptree.update fp ~key:"fl000" ~value:"b");
  Alcotest.(check (option string)) "updated across split" (Some "b")
    (Fptree.search fp "fl000");
  Alcotest.(check int) "count stable" Fptree.leaf_cap (Fptree.count fp);
  Fptree.check_integrity fp

let test_fptree_recovery () =
  let pool = fresh_pool () in
  let fp = Fptree.create pool in
  for i = 0 to 999 do
    Fptree.insert fp ~key:(Printf.sprintf "rc%06d" i) ~value:(string_of_int i)
  done;
  for i = 0 to 299 do
    ignore (Fptree.delete fp (Printf.sprintf "rc%06d" i))
  done;
  Pmem.crash pool;
  let fp' = Fptree.recover pool in
  Alcotest.(check int) "700 keys recovered" 700 (Fptree.count fp');
  Fptree.check_integrity fp';
  for i = 0 to 999 do
    let expect = if i < 300 then None else Some (string_of_int i) in
    if Fptree.search fp' (Printf.sprintf "rc%06d" i) <> expect then
      Alcotest.failf "wrong recovered state for %d" i
  done;
  (* recovered tree keeps working *)
  Fptree.insert fp' ~key:"rc000000" ~value:"back";
  Alcotest.(check (option string)) "post-recovery insert" (Some "back")
    (Fptree.search fp' "rc000000");
  Fptree.check_integrity fp'

let test_fptree_recover_empty () =
  let pool = fresh_pool () in
  let fp = Fptree.create pool in
  ignore fp;
  Pmem.crash pool;
  let fp' = Fptree.recover pool in
  Alcotest.(check int) "empty" 0 (Fptree.count fp');
  Fptree.insert fp' ~key:"first" ~value:"v";
  Alcotest.(check (option string)) "usable" (Some "v") (Fptree.search fp' "first")

let test_fptree_limits () =
  let pool = fresh_pool () in
  let fp = Fptree.create pool in
  Alcotest.(check bool) "long key rejected" true
    (match Fptree.insert fp ~key:(String.make 25 'k') ~value:"v" with
    | () -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "long value rejected" true
    (match Fptree.insert fp ~key:"k" ~value:(String.make 32 'v') with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_fptree_fingerprint_collisions () =
  (* craft several keys sharing one fingerprint byte: the fingerprint
     filter must fall back to key comparison and stay correct *)
  let pool = fresh_pool () in
  let fp = Fptree.create pool in
  let target = Fptree.fingerprint "collide-0" in
  let colliders = ref [ "collide-0" ] in
  let i = ref 1 in
  while List.length !colliders < 6 && !i < 100_000 do
    let k = Printf.sprintf "c%d" !i in
    if Fptree.fingerprint k = target then colliders := k :: !colliders;
    incr i
  done;
  Alcotest.(check bool) "found collisions" true (List.length !colliders >= 3);
  List.iteri (fun i k -> Fptree.insert fp ~key:k ~value:(string_of_int i)) !colliders;
  List.iteri
    (fun i k ->
      Alcotest.(check (option string)) ("collider " ^ k) (Some (string_of_int i))
        (Fptree.search fp k))
    !colliders;
  (* delete one collider; the rest must remain findable *)
  ignore (Fptree.delete fp (List.nth !colliders 1));
  Alcotest.(check (option string)) "deleted collider gone" None
    (Fptree.search fp (List.nth !colliders 1));
  Alcotest.(check bool) "other colliders intact" true
    (Fptree.search fp (List.nth !colliders 0) <> None);
  Fptree.check_integrity fp

let test_fptree_multi_level () =
  let pool = fresh_pool () in
  let fp = Fptree.create pool in
  (* > leaf_cap * inner_cap entries forces at least three levels *)
  let n = (Fptree.leaf_cap * 40) + 7 in
  for i = 0 to n - 1 do
    Fptree.insert fp ~key:(Printf.sprintf "ml%06d" i) ~value:"v"
  done;
  Alcotest.(check bool) "three levels or more" true (Fptree.height fp >= 3);
  Fptree.check_integrity fp;
  for i = 0 to n - 1 do
    if Fptree.search fp (Printf.sprintf "ml%06d" i) = None then
      Alcotest.failf "lost ml%06d" i
  done

let test_fptree_slot_reuse () =
  let pool = fresh_pool () in
  let fp = Fptree.create pool in
  for i = 0 to 9 do
    Fptree.insert fp ~key:(Printf.sprintf "sr%02d" i) ~value:"v"
  done;
  let pm = Fptree.pm_bytes fp in
  for _ = 1 to 50 do
    ignore (Fptree.delete fp "sr05");
    Fptree.insert fp ~key:"sr05" ~value:"v"
  done;
  Alcotest.(check int) "delete/reinsert cycles reuse slots" pm (Fptree.pm_bytes fp);
  Fptree.check_integrity fp

let test_fptree_range_with_holes () =
  let pool = fresh_pool () in
  let fp = Fptree.create pool in
  for i = 0 to 299 do
    Fptree.insert fp ~key:(Printf.sprintf "rh%04d" i) ~value:"v"
  done;
  for i = 100 to 199 do
    ignore (Fptree.delete fp (Printf.sprintf "rh%04d" i))
  done;
  let got = ref 0 in
  Fptree.range fp ~lo:"rh0050" ~hi:"rh0250" (fun _ _ -> incr got);
  (* 50..99 and 200..250 survive in the window *)
  Alcotest.(check int) "range skips deleted entries" 101 !got

let test_fptree_no_coalesce () =
  (* deleting everything leaves the chain in place: FPTree never merges
     leaves, which the paper cites for its PM consumption *)
  let pool = fresh_pool () in
  let fp = Fptree.create pool in
  for i = 0 to 199 do
    Fptree.insert fp ~key:(Printf.sprintf "nc%04d" i) ~value:"v"
  done;
  let pm_full = Fptree.pm_bytes fp in
  for i = 0 to 199 do
    ignore (Fptree.delete fp (Printf.sprintf "nc%04d" i))
  done;
  Alcotest.(check int) "pm unchanged after deletes" pm_full (Fptree.pm_bytes fp);
  Alcotest.(check int) "empty" 0 (Fptree.count fp)

(* ------------------------------------------------------------------ *)
(* WORT specifics                                                      *)

let test_wort_basic_shape () =
  let pool = fresh_pool () in
  let w = Wort.create pool in
  Wort.insert w ~key:"abcd" ~value:"1";
  Alcotest.(check int) "single leaf" 1 (Wort.height w);
  Wort.insert w ~key:"abce" ~value:"2";
  (* the two keys share 7 nibbles: one compressed node + leaves *)
  Alcotest.(check int) "compressed join" 2 (Wort.height w);
  Wort.check_invariants w

let test_wort_deeper_than_woart () =
  (* 16-ary non-adaptive nodes: two levels per byte, so WORT descents
     are deeper than WOART's 256-ary ones — its known trade-off *)
  let mk_keys n = List.init n (fun i -> Printf.sprintf "depth%04d" i) in
  let pool_w = fresh_pool () in
  let w = Wort.create pool_w in
  List.iter (fun k -> Wort.insert w ~key:k ~value:"v") (mk_keys 500);
  Wort.check_invariants w;
  let pool_a = fresh_pool () in
  let a = Hart_baselines.Woart.create pool_a in
  List.iter (fun k -> Hart_baselines.Woart.insert a ~key:k ~value:"v") (mk_keys 500);
  Alcotest.(check bool)
    (Printf.sprintf "WORT height %d > ART-based height" (Wort.height w))
    true
    (Wort.height w > 3)

let test_wort_prefix_keys () =
  let pool = fresh_pool () in
  let w = Wort.create pool in
  List.iteri (fun i k -> Wort.insert w ~key:k ~value:(string_of_int i))
    [ "a"; "ab"; "abc"; "abcd" ];
  List.iteri
    (fun i k ->
      Alcotest.(check (option string)) k (Some (string_of_int i)) (Wort.search w k))
    [ "a"; "ab"; "abc"; "abcd" ];
  ignore (Wort.delete w "ab");
  Alcotest.(check (option string)) "middle prefix gone" None (Wort.search w "ab");
  Alcotest.(check (option string)) "deeper survives" (Some "3") (Wort.search w "abcd");
  Wort.check_invariants w

let test_wort_collapse_on_delete () =
  let pool = fresh_pool () in
  let w = Wort.create pool in
  let live0 = Pmem.live_bytes pool in
  for i = 0 to 199 do
    Wort.insert w ~key:(Printf.sprintf "wc%04d" i) ~value:"v"
  done;
  for i = 0 to 199 do
    ignore (Wort.delete w (Printf.sprintf "wc%04d" i))
  done;
  Alcotest.(check int) "empty" 0 (Wort.count w);
  Alcotest.(check int) "all PM returned" live0 (Pmem.live_bytes pool);
  Wort.check_invariants w

let test_wort_range_ordered () =
  let pool = fresh_pool () in
  let w = Wort.create pool in
  let keys = [ "b"; "a"; "c"; "ab"; "bb"; "ba" ] in
  List.iter (fun k -> Wort.insert w ~key:k ~value:k) keys;
  let got = ref [] in
  Wort.range w ~lo:"a" ~hi:"bb" (fun k _ -> got := k :: !got);
  Alcotest.(check (list string)) "ordered window" [ "a"; "ab"; "b"; "ba"; "bb" ]
    (List.rev !got)

(* ------------------------------------------------------------------ *)
(* NV-Tree specifics                                                   *)

let test_nv_append_only_growth () =
  (* updates append rather than overwrite: the leaf's PM usage is
     bounded by history until a split garbage-collects it *)
  let pool = fresh_pool () in
  let nv = Nv_tree.create pool in
  Nv_tree.insert nv ~key:"appended" ~value:"v0";
  for i = 1 to 10 do
    ignore (Nv_tree.update nv ~key:"appended" ~value:(Printf.sprintf "v%d" i))
  done;
  Alcotest.(check (option string)) "latest wins" (Some "v10")
    (Nv_tree.search nv "appended");
  Alcotest.(check int) "still one key" 1 (Nv_tree.count nv);
  Nv_tree.check_integrity nv

let test_nv_delete_is_tombstone () =
  let pool = fresh_pool () in
  let nv = Nv_tree.create pool in
  Nv_tree.insert nv ~key:"ghost" ~value:"v";
  Alcotest.(check bool) "deleted" true (Nv_tree.delete nv "ghost");
  Alcotest.(check (option string)) "gone" None (Nv_tree.search nv "ghost");
  (* reinsert over the tombstone *)
  Nv_tree.insert nv ~key:"ghost" ~value:"back";
  Alcotest.(check (option string)) "resurrected" (Some "back")
    (Nv_tree.search nv "ghost");
  Alcotest.(check int) "count" 1 (Nv_tree.count nv);
  Nv_tree.check_integrity nv

let test_nv_split_rebuilds_index () =
  let pool = fresh_pool () in
  let nv = Nv_tree.create pool in
  Alcotest.(check int) "no rebuilds yet" 0 (Nv_tree.rebuild_count nv);
  for i = 0 to 299 do
    Nv_tree.insert nv ~key:(Printf.sprintf "nv%04d" i) ~value:"v"
  done;
  Alcotest.(check bool) "splits rebuilt the whole index" true
    (Nv_tree.rebuild_count nv > 2);
  Nv_tree.check_integrity nv;
  for i = 0 to 299 do
    if Nv_tree.search nv (Printf.sprintf "nv%04d" i) = None then
      Alcotest.failf "lost nv%04d" i
  done

let test_nv_history_churn () =
  (* hammering one key with update/delete cycles exercises compaction
     splits where few or no live entries remain *)
  let pool = fresh_pool () in
  let nv = Nv_tree.create pool in
  for round = 0 to 200 do
    Nv_tree.insert nv ~key:"churn" ~value:(string_of_int round);
    if round mod 3 = 0 then ignore (Nv_tree.delete nv "churn")
  done;
  Nv_tree.check_integrity nv;
  Alcotest.(check bool) "final state consistent" true
    (match Nv_tree.search nv "churn" with
    | Some _ -> Nv_tree.count nv = 1
    | None -> Nv_tree.count nv = 0)

(* ------------------------------------------------------------------ *)
(* wB+Tree specifics                                                   *)

let test_wb_sorted_chain () =
  let pool = fresh_pool () in
  let wb = Wb_tree.create pool in
  for i = 299 downto 0 do
    Wb_tree.insert wb ~key:(Printf.sprintf "wb%04d" i) ~value:"v"
  done;
  Wb_tree.check_integrity wb;
  Alcotest.(check bool) "grew inner levels" true (Wb_tree.height wb > 1);
  let got = ref [] in
  Wb_tree.range wb ~lo:"wb0000" ~hi:"wb9999" (fun k _ -> got := k :: !got);
  Alcotest.(check (list string)) "ordered full scan"
    (List.init 300 (fun i -> Printf.sprintf "wb%04d" i))
    (List.rev !got)

let test_wb_split_logging_charged () =
  (* the split path must charge noticeably more flushes than in-node
     inserts: measure flushes across a split boundary *)
  let pool = fresh_pool () in
  let wb = Wb_tree.create pool in
  for i = 0 to Wb_tree.node_cap - 1 do
    Wb_tree.insert wb ~key:(Printf.sprintf "sp%04d" i) ~value:"v"
  done;
  let before = (Meter.counters (Pmem.meter pool)).Meter.flushes in
  Wb_tree.insert wb ~key:"sp9999" ~value:"v" (* forces the first split *);
  let split_cost = (Meter.counters (Pmem.meter pool)).Meter.flushes - before in
  let before = (Meter.counters (Pmem.meter pool)).Meter.flushes in
  Wb_tree.insert wb ~key:"sp99990" ~value:"v" (* plain insert *);
  let plain_cost = (Meter.counters (Pmem.meter pool)).Meter.flushes - before in
  Alcotest.(check bool)
    (Printf.sprintf "split (%d flushes) >> insert (%d flushes)" split_cost plain_cost)
    true
    (split_cost > 3 * plain_cost)

(* ------------------------------------------------------------------ *)
(* CDDS B-Tree specifics                                               *)

let test_cdds_versioning () =
  let pool = fresh_pool () in
  let c = Cdds.create pool in
  let v0 = Cdds.version c in
  Cdds.insert c ~key:"versioned" ~value:"v1";
  Alcotest.(check bool) "version bumped" true (Cdds.version c > v0);
  ignore (Cdds.update c ~key:"versioned" ~value:"v2");
  Alcotest.(check (option string)) "latest version visible" (Some "v2")
    (Cdds.search c "versioned");
  Alcotest.(check int) "one dead version" 1 (Cdds.dead_entries c);
  ignore (Cdds.delete c "versioned");
  Alcotest.(check (option string)) "end-dated" None (Cdds.search c "versioned");
  Alcotest.(check int) "two corpses" 2 (Cdds.dead_entries c);
  Cdds.check_integrity c

let test_cdds_dead_entry_growth_and_collection () =
  (* the paper's §II-C criticism: versioning generates many dead
     entries... until splits collect them *)
  let pool = fresh_pool () in
  let c = Cdds.create pool in
  Cdds.insert c ~key:"churned" ~value:"v";
  for i = 0 to 9 do
    ignore (Cdds.update c ~key:"churned" ~value:(string_of_int i))
  done;
  Alcotest.(check int) "ten dead versions" 10 (Cdds.dead_entries c);
  (* filling the leaf forces compaction/split: corpses are collected *)
  for i = 0 to 99 do
    Cdds.insert c ~key:(Printf.sprintf "fill%04d" i) ~value:"v"
  done;
  Alcotest.(check bool)
    (Printf.sprintf "corpses collected (%d left)" (Cdds.dead_entries c))
    true
    (Cdds.dead_entries c < 10);
  Alcotest.(check (option string)) "live version survived collection"
    (Some "9") (Cdds.search c "churned");
  Cdds.check_integrity c

(* ------------------------------------------------------------------ *)
(* Memory accounting expectations (Fig. 10b directions)                *)

let load_tree (ops : Index_intf.ops) n =
  for i = 0 to n - 1 do
    ops.insert ~key:(Printf.sprintf "mm%06d" i) ~value:"seven"
  done

let test_pure_pm_trees_use_no_dram () =
  List.iter
    (fun maker ->
      let ops = maker () in
      load_tree ops 500;
      Alcotest.(check int) (ops.Index_intf.name ^ " uses no DRAM") 0
        (ops.Index_intf.dram_bytes ()))
    [ make_woart; make_cow ]

let test_hybrid_trees_use_dram () =
  List.iter
    (fun maker ->
      let ops = maker () in
      load_tree ops 500;
      Alcotest.(check bool) (ops.Index_intf.name ^ " uses DRAM") true
        (ops.Index_intf.dram_bytes () > 0))
    [ make_hart; make_fptree ]

let test_hart_dram_exceeds_fptree () =
  (* the paper: HART consumes much more DRAM than FPTree (Fig. 10b) *)
  let hart = make_hart () and fp = make_fptree () in
  load_tree hart 3000;
  load_tree fp 3000;
  Alcotest.(check bool) "HART DRAM > FPTree DRAM" true
    (hart.Index_intf.dram_bytes () > fp.Index_intf.dram_bytes ())

let test_fptree_pm_exceeds_hart () =
  (* the paper: FPTree consumes more PM than HART (fingerprints, no
     coalescing) *)
  let hart = make_hart () and fp = make_fptree () in
  load_tree hart 3000;
  load_tree fp 3000;
  Alcotest.(check bool) "FPTree PM > HART PM" true
    (fp.Index_intf.pm_bytes () > hart.Index_intf.pm_bytes ())

(* ------------------------------------------------------------------ *)
(* Cost-model direction checks: the event counts that drive every
   figure must order the trees the way the paper's results do.         *)

let flushes_for maker n =
  let pool = fresh_pool () in
  let ops =
    match maker with
    | `Hart -> Hart_index.ops (Hart.create pool)
    | `Woart -> Woart.ops (Woart.create pool)
    | `Cow -> Art_cow.ops (Art_cow.create pool)
    | `Fptree -> Fptree.ops (Fptree.create pool)
  in
  let before = Meter.counters (Pmem.meter pool) in
  for i = 0 to n - 1 do
    ops.Index_intf.insert ~key:(Printf.sprintf "cost%06d" i) ~value:"seven"
  done;
  let d = Meter.diff before (Meter.counters (Pmem.meter pool)) in
  d.Meter.flushes

let test_insert_flush_ordering () =
  let n = 2000 in
  let hart = flushes_for `Hart n
  and woart = flushes_for `Woart n
  and cow = flushes_for `Cow n in
  Alcotest.(check bool)
    (Printf.sprintf "HART (%d) flushes less than WOART (%d)" hart woart)
    true (hart < woart);
  Alcotest.(check bool)
    (Printf.sprintf "WOART (%d) flushes less than ART+CoW (%d)" woart cow)
    true (woart < cow)

let search_pm_reads maker n =
  let pool = fresh_pool () in
  let ops =
    match maker with
    | `Hart -> Hart_index.ops (Hart.create pool)
    | `Woart -> Woart.ops (Woart.create pool)
  in
  for i = 0 to n - 1 do
    ops.Index_intf.insert ~key:(Printf.sprintf "sr%06d" i) ~value:"seven"
  done;
  let before = Meter.counters (Pmem.meter pool) in
  for i = 0 to n - 1 do
    ignore (ops.Index_intf.search (Printf.sprintf "sr%06d" i))
  done;
  let d = Meter.diff before (Meter.counters (Pmem.meter pool)) in
  d.Meter.pm_reads

let test_search_pm_read_ordering () =
  (* WOART descends through PM nodes, HART only validates the leaf: HART
     must issue far fewer PM reads per search *)
  let n = 2000 in
  let hart = search_pm_reads `Hart n and woart = search_pm_reads `Woart n in
  Alcotest.(check bool)
    (Printf.sprintf "HART PM reads (%d) < WOART PM reads (%d)" hart woart)
    true (hart < woart)

let () =
  Alcotest.run "baselines"
    [
      ("uniform", List.concat_map (fun (n, m) -> per_tree_cases n m) all_makers);
      ( "model",
        List.map
          (fun (n, m) -> QCheck_alcotest.to_alcotest (qcheck_tree_vs_map n m))
          all_makers );
      ( "fptree",
        [
          Alcotest.test_case "splits and ordered chain" `Quick test_fptree_split_chain;
          Alcotest.test_case "in-leaf update flip" `Quick test_fptree_update_inplace_flip;
          Alcotest.test_case "update on full leaf" `Quick test_fptree_update_on_full_leaf;
          Alcotest.test_case "recovery" `Quick test_fptree_recovery;
          Alcotest.test_case "recover empty" `Quick test_fptree_recover_empty;
          Alcotest.test_case "limits" `Quick test_fptree_limits;
          Alcotest.test_case "fingerprint collisions" `Quick test_fptree_fingerprint_collisions;
          Alcotest.test_case "multi-level inner" `Quick test_fptree_multi_level;
          Alcotest.test_case "slot reuse" `Quick test_fptree_slot_reuse;
          Alcotest.test_case "range with holes" `Quick test_fptree_range_with_holes;
          Alcotest.test_case "no leaf coalescing" `Quick test_fptree_no_coalesce;
        ] );
      ( "wort",
        [
          Alcotest.test_case "basic shape" `Quick test_wort_basic_shape;
          Alcotest.test_case "deeper than WOART" `Quick test_wort_deeper_than_woart;
          Alcotest.test_case "prefix keys" `Quick test_wort_prefix_keys;
          Alcotest.test_case "collapse on delete" `Quick test_wort_collapse_on_delete;
          Alcotest.test_case "ordered range" `Quick test_wort_range_ordered;
        ] );
      ( "nv-tree",
        [
          Alcotest.test_case "append-only updates" `Quick test_nv_append_only_growth;
          Alcotest.test_case "tombstone deletes" `Quick test_nv_delete_is_tombstone;
          Alcotest.test_case "splits rebuild the index" `Quick test_nv_split_rebuilds_index;
          Alcotest.test_case "history churn" `Quick test_nv_history_churn;
        ] );
      ( "wb+tree",
        [
          Alcotest.test_case "sorted chain" `Quick test_wb_sorted_chain;
          Alcotest.test_case "split logging charged" `Quick test_wb_split_logging_charged;
        ] );
      ( "cdds",
        [
          Alcotest.test_case "versioned updates" `Quick test_cdds_versioning;
          Alcotest.test_case "dead entries grow and collect" `Quick
            test_cdds_dead_entry_growth_and_collection;
        ] );
      ( "memory",
        [
          Alcotest.test_case "pure-PM trees use no DRAM" `Quick test_pure_pm_trees_use_no_dram;
          Alcotest.test_case "hybrid trees use DRAM" `Quick test_hybrid_trees_use_dram;
          Alcotest.test_case "HART DRAM > FPTree DRAM" `Quick test_hart_dram_exceeds_fptree;
          Alcotest.test_case "FPTree PM > HART PM" `Quick test_fptree_pm_exceeds_hart;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "insert flush ordering" `Quick test_insert_flush_ordering;
          Alcotest.test_case "search PM-read ordering" `Quick test_search_pm_read_ordering;
        ] );
    ]
