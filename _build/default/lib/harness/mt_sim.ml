let simulate ~threads ~trace ~svc_ns ?(physical_cores = 8) ?(ht_efficiency = 0.70)
    () =
  if threads < 1 then invalid_arg "Mt_sim.simulate: threads must be positive";
  let svc =
    if threads <= physical_cores then svc_ns
    else begin
      (* linear interpolation between full-speed cores and the fully
         hyper-threaded regime *)
      let over = float_of_int (threads - physical_cores) /. float_of_int physical_cores in
      svc_ns *. (1. +. (over *. ((1. /. ht_efficiency) -. 1.)))
    end
  in
  let thread_free = Array.make threads 0. in
  (* per-ART lock horizon: when its current writer ends, and when its
     last reader ends *)
  let writer_end = Hashtbl.create 1024 in
  let reader_end = Hashtbl.create 1024 in
  let get tbl k = Option.value (Hashtbl.find_opt tbl k) ~default:0. in
  Array.iteri
    (fun i (art, is_write) ->
      let tid = i mod threads in
      let start =
        if is_write then
          Float.max thread_free.(tid)
            (Float.max (get writer_end art) (get reader_end art))
        else Float.max thread_free.(tid) (get writer_end art)
      in
      let fin = start +. svc in
      if is_write then Hashtbl.replace writer_end art fin
      else Hashtbl.replace reader_end art (Float.max (get reader_end art) fin);
      thread_free.(tid) <- fin)
    trace;
  let total_ns = Array.fold_left Float.max 0. thread_free in
  if total_ns <= 0. then 0.
  else float_of_int (Array.length trace) /. (total_ns /. 1e9) /. 1e6
