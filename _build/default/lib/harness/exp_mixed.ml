(** Fig. 9: the three YCSB mixed workloads (Read-Intensive,
    Read-Modified-Write, Write-Intensive), uniform request distribution,
    avg time per operation across the latency grid. *)

module Latency = Hart_pmem.Latency
module Keygen = Hart_workloads.Keygen
module Workload = Hart_workloads.Workload

let default_preload = 20_000

let run ~scale =
  let n = int_of_float (float_of_int default_preload *. scale) in
  let n_ops = 2 * n in
  (* preloaded database + disjoint fresh keys for the insert share *)
  let universe = Keygen.generate Keygen.Random (n + n_ops) in
  let preloaded = Array.sub universe 0 n in
  let fresh = Array.sub universe n n_ops in
  List.iteri
    (fun m_idx mix ->
      let trace = Workload.ycsb mix ~preloaded ~fresh ~n_ops in
      let sub = Char.chr (Char.code 'a' + m_idx) in
      Report.print_table
        ~title:
          (Printf.sprintf
             "Fig 9(%c): %s avg us/op -- %d preloaded, %d ops, Uniform" sub
             mix.Workload.mix_name n n_ops)
        ~col_names:(List.map Runner.tree_name Runner.all_trees)
        ~rows:
          (List.map
             (fun config ->
               ( config.Latency.name,
                 List.map
                   (fun tree ->
                     let inst = Runner.make tree config in
                     Runner.preload inst preloaded Keygen.value_for;
                     Runner.avg_us (Runner.measure inst trace))
                   Runner.all_trees ))
             Latency.all))
    Workload.mixes
