(** Fig. 8: impact of the number of records on the four basic operations
    — total time (seconds, the paper plots log scale) under Random in
    300/100, record counts swept over four sizes.

    The paper sweeps 1M–100M; the default sweep is scaled down 100×
    (the costs are per-operation, so the shapes survive; see DESIGN.md). *)

module Latency = Hart_pmem.Latency
module Keygen = Hart_workloads.Keygen
module Workload = Hart_workloads.Workload

let base_sizes = [ 10_000; 50_000; 100_000; 200_000 ]

let run ~scale =
  let sizes =
    List.map (fun n -> max 1_000 (int_of_float (float_of_int n *. scale))) base_sizes
  in
  let results =
    List.map
      (fun n ->
        let keys = Keygen.generate Keygen.Random n in
        let per_tree =
          List.map
            (fun tree ->
              let inst = Runner.make tree Latency.c300_100 in
              let m_ins =
                Runner.measure inst (Workload.insert_trace keys Keygen.value_for)
              in
              let m_sea = Runner.measure inst (Workload.search_trace keys) in
              let m_upd =
                Runner.measure inst (Workload.update_trace keys Keygen.value_for)
              in
              let m_del = Runner.measure inst (Workload.delete_trace keys) in
              ( tree,
                [|
                  m_ins.Runner.sim_ns /. 1e9;
                  m_sea.Runner.sim_ns /. 1e9;
                  m_upd.Runner.sim_ns /. 1e9;
                  m_del.Runner.sim_ns /. 1e9;
                |] ))
            Runner.all_trees
        in
        (n, per_tree))
      sizes
  in
  List.iteri
    (fun op_idx (sub, op) ->
      Report.print_table
        ~title:
          (Printf.sprintf "Fig 8(%s): %s total time (s) vs records -- Random, 300/100"
             sub op)
        ~col_names:(List.map Runner.tree_name Runner.all_trees)
        ~rows:
          (List.map
             (fun (n, per_tree) ->
               ( Printf.sprintf "%dk" (n / 1000),
                 List.map (fun (_, times) -> times.(op_idx)) per_tree ))
             results))
    [ ("a", "Insertion"); ("b", "Search"); ("c", "Update"); ("d", "Deletion") ]
