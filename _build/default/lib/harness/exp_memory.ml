(** Fig. 10b: DRAM and PM consumption of the four trees under Sequential
    (the paper loads 100M records; counts scale with --scale). WOART and
    ART+CoW use no DRAM; HART uses the most DRAM; FPTree the most PM. *)

module Latency = Hart_pmem.Latency
module Index_intf = Hart_baselines.Index_intf
module Keygen = Hart_workloads.Keygen

let default_records = 100_000

let run ~scale =
  let n = int_of_float (float_of_int default_records *. scale) in
  let keys = Keygen.generate Keygen.Sequential n in
  let mb x = float_of_int x /. 1024. /. 1024. in
  Report.print_table
    ~title:
      (Printf.sprintf "Fig 10(b): Memory consumption (MB) -- Sequential, %d records" n)
    ~col_names:[ "PM"; "DRAM" ]
    ~rows:
      (List.map
         (fun tree ->
           let inst = Runner.make tree Latency.c300_100 in
           Runner.preload inst keys Keygen.value_for;
           ( Runner.tree_name tree,
             [
               mb (inst.Runner.ops.Index_intf.pm_bytes ());
               mb (inst.Runner.ops.Index_intf.dram_bytes ());
             ] ))
         Runner.all_trees)
