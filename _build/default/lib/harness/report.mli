(** Plain-text table rendering for the figure reproductions: one table
    per sub-figure, columns = trees, rows = latency configs (or sweep
    points), matching how the paper's bar groups are organised. *)

val print_table :
  title:string -> col_names:string list -> rows:(string * float list) list -> unit
(** Numeric cells rendered with 3 decimals, aligned. *)

val print_table_s :
  title:string -> col_names:string list -> rows:(string * string list) list -> unit

val ratio : float -> float -> float
(** [ratio baseline ours] = baseline / ours, i.e. "ours is Nx faster";
    0 when either input is non-positive. *)

val fmt_f : float -> string
(** 3-decimal rendering used in tables ("1.234"). *)
