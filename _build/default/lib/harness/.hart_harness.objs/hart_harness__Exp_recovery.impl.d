lib/harness/exp_recovery.ml: Array Hart_baselines Hart_core Hart_pmem Hart_workloads List Printf Report
