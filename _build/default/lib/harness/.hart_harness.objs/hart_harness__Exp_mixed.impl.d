lib/harness/exp_mixed.ml: Array Char Hart_pmem Hart_workloads List Printf Report Runner
