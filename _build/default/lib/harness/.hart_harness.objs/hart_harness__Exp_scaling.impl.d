lib/harness/exp_scaling.ml: Array Hart_pmem Hart_workloads List Printf Report Runner
