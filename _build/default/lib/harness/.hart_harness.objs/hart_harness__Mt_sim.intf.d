lib/harness/mt_sim.mli:
