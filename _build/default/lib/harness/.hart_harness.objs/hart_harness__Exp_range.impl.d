lib/harness/exp_range.ml: Array Hart_baselines Hart_pmem Hart_workloads List Printf Report Runner
