lib/harness/exp_ablation.ml: Hart_baselines Hart_core Hart_pmem Hart_workloads List Printf Report Runner
