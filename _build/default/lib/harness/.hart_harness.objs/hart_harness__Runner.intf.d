lib/harness/runner.mli: Hart_baselines Hart_pmem Hart_workloads
