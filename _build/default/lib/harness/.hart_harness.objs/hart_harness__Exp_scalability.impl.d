lib/harness/exp_scalability.ml: Array Hart_core Hart_pmem Hart_util Hart_workloads Hashtbl List Mt_sim Printf Report Runner
