lib/harness/report.mli:
