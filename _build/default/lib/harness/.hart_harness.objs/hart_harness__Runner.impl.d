lib/harness/runner.ml: Array Hart_baselines Hart_core Hart_pmem Hart_workloads String Unix
