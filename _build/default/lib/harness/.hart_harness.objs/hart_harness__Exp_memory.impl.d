lib/harness/exp_memory.ml: Hart_baselines Hart_pmem Hart_workloads List Printf Report Runner
