lib/harness/mt_sim.ml: Array Float Hashtbl Option
