lib/harness/exp_basic_ops.ml: Char Float Hart_baselines Hart_pmem Hart_workloads List Printf Report Runner String
