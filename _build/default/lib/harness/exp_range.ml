(** Fig. 10a: range query — scan a window of records under Sequential,
    avg time per returned record. FPTree walks its ordered leaf chain;
    the ART-based trees resolve each record through ordered subtree
    traversal with per-leaf validation (the paper implements theirs as a
    search per key). *)

module Latency = Hart_pmem.Latency
module Index_intf = Hart_baselines.Index_intf
module Keygen = Hart_workloads.Keygen

let default_records = 50_000

let run ~scale =
  let n = int_of_float (float_of_int default_records *. scale) in
  let window = n / 2 in
  let keys = Keygen.generate Keygen.Sequential n in
  let lo = keys.(n / 4) and hi = keys.((n / 4) + window - 1) in
  Report.print_table
    ~title:
      (Printf.sprintf
         "Fig 10(a): Range query avg us/record -- Sequential, %d records, %d-record window"
         n window)
    ~col_names:(List.map Runner.tree_name Runner.all_trees)
    ~rows:
      (List.map
         (fun config ->
           ( config.Latency.name,
             List.map
               (fun tree ->
                 let inst = Runner.make tree config in
                 Runner.preload inst keys Keygen.value_for;
                 let meter = inst.Runner.meter in
                 let before = Hart_pmem.Meter.counters meter in
                 let seen = ref 0 in
                 inst.Runner.ops.Index_intf.range ~lo ~hi (fun _ _ -> incr seen);
                 let d =
                   Hart_pmem.Meter.diff before (Hart_pmem.Meter.counters meter)
                 in
                 if !seen <> window then
                   failwith
                     (Printf.sprintf "range returned %d of %d records" !seen window);
                 d.Hart_pmem.Meter.sim_ns /. float_of_int window /. 1000.)
               Runner.all_trees ))
         Latency.all)
