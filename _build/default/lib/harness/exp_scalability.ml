(** Fig. 10d: HART multi-threaded throughput (MIOPS) for 1-16 threads,
    Random keys, 300/100. Service times are measured on the
    single-threaded simulated clock; the per-ART reader/writer admission
    protocol is replayed by {!Mt_sim} (see DESIGN.md for why wall-clock
    scaling cannot be measured in this container). *)

module Latency = Hart_pmem.Latency
module Hart = Hart_core.Hart
module Keygen = Hart_workloads.Keygen
module Workload = Hart_workloads.Workload
module Rng = Hart_util.Rng

let thread_counts = [ 1; 2; 4; 8; 16 ]
let default_records = 20_000

let run ~scale =
  let n = int_of_float (float_of_int default_records *. scale) in
  let keys = Keygen.generate Keygen.Random n in
  (* measure single-threaded service times per operation type *)
  let inst = Runner.make Runner.HART Latency.c300_100 in
  let svc_ins =
    Runner.avg_us (Runner.measure inst (Workload.insert_trace keys Keygen.value_for))
    *. 1000.
  in
  let svc_sea = Runner.avg_us (Runner.measure inst (Workload.search_trace keys)) *. 1000. in
  let svc_upd =
    Runner.avg_us (Runner.measure inst (Workload.update_trace keys Keygen.value_for))
    *. 1000.
  in
  (* deletion service time from a rebuilt tree (the tree is empty now) *)
  Runner.preload inst keys Keygen.value_for;
  let svc_del = Runner.avg_us (Runner.measure inst (Workload.delete_trace keys)) *. 1000. in
  (* the lock an operation contends on is its key's ART = hash prefix *)
  let hart = Hart.create (Hart_pmem.Pmem.create (Hart_pmem.Meter.create Latency.c300_100)) in
  let art_ids = Hashtbl.create 4096 in
  let art_of key =
    let hk, _ = Hart.split_key hart key in
    match Hashtbl.find_opt art_ids hk with
    | Some id -> id
    | None ->
        let id = Hashtbl.length art_ids in
        Hashtbl.add art_ids hk id;
        id
  in
  let rng = Rng.create 0xF16DL in
  let mk_trace ~write =
    Array.init (4 * n) (fun _ -> (art_of keys.(Rng.int rng n), write))
  in
  let write_trace = mk_trace ~write:true and read_trace = mk_trace ~write:false in
  Report.print_table
    ~title:
      (Printf.sprintf
         "Fig 10(d): HART scalability (MIOPS) -- Random, 300/100, %d records, %d ARTs"
         n (Hashtbl.length art_ids))
    ~col_names:[ "Insertion"; "Search"; "Update"; "Deletion" ]
    ~rows:
      (List.map
         (fun threads ->
           ( Printf.sprintf "%d threads" threads,
             List.map
               (fun (svc_ns, trace) -> Mt_sim.simulate ~threads ~trace ~svc_ns ())
               [
                 (svc_ins, write_trace);
                 (svc_sea, read_trace);
                 (svc_upd, write_trace);
                 (svc_del, write_trace);
               ] ))
         thread_counts);
  (* Extra E3, beyond the paper: HART allows at most one writer per ART
     (§III-A.3), so a skewed request distribution concentrates writers
     on few locks. Zipf(0.99) is YCSB's default skew. Reads still scale:
     they share the hot ART's lock. *)
  let zipf = Workload.zipf_sampler (Rng.create 0x21BFL) ~n ~s:0.99 in
  let mk_skewed ~write =
    Array.init (4 * n) (fun _ -> (art_of keys.(zipf ()), write))
  in
  let skew_w = mk_skewed ~write:true and skew_r = mk_skewed ~write:false in
  Report.print_table
    ~title:
      "Extra E3: HART scalability under Zipf(0.99) skew (MIOPS) -- writers \
       serialise on hot ARTs, readers share"
    ~col_names:[ "Update (uniform)"; "Update (zipf)"; "Search (zipf)" ]
    ~rows:
      (List.map
         (fun threads ->
           ( Printf.sprintf "%d threads" threads,
             [
               Mt_sim.simulate ~threads ~trace:write_trace ~svc_ns:svc_upd ();
               Mt_sim.simulate ~threads ~trace:skew_w ~svc_ns:svc_upd ();
               Mt_sim.simulate ~threads ~trace:skew_r ~svc_ns:svc_sea ();
             ] ))
         thread_counts)
