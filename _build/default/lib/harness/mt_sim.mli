(** Discrete-event model of HART's per-ART reader/writer concurrency for
    the Fig. 10d scalability experiment.

    The container offers a single physical core, so the paper's 16-thread
    wall-clock experiment cannot run natively (DESIGN.md). Instead, the
    real lock protocol is correctness-tested in-process ({!Hart_core.Hart_mt})
    and its throughput is replayed here: operations are dealt round-robin
    to simulated threads; a write to an ART waits for that ART's writer
    and all its readers, a read waits only for the writer (readers
    share); service times come from the measured single-threaded run.
    Threads beyond the physical core count pay a hyper-threading penalty,
    as the paper observes for 16 threads on 8 cores. *)

val simulate :
  threads:int ->
  trace:(int * bool) array ->
  svc_ns:float ->
  ?physical_cores:int ->
  ?ht_efficiency:float ->
  unit ->
  float
(** [simulate ~threads ~trace ~svc_ns ()] returns throughput in MIOPS.
    [trace] is [(art_id, is_write)] per operation; [svc_ns] the measured
    single-threaded service time per operation. Defaults: 8 physical
    cores, 0.70 hyper-threaded efficiency (calibrated to the paper's
    10.7–11.9× at 16 threads). *)
