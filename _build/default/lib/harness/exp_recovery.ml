(** Fig. 10c: build time vs recovery time for the two hybrid trees (HART
    and FPTree) under Random in 300/100 — pure-PM WOART/ART+CoW need no
    recovery (§IV-F). Build = insert all records into a fresh tree;
    recovery = crash the pool (losing caches and DRAM structures) and
    rebuild the volatile side from PM leaves. *)

module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Pmem = Hart_pmem.Pmem
module Hart = Hart_core.Hart
module Fptree = Hart_baselines.Fptree
module Keygen = Hart_workloads.Keygen

let base_sizes = [ 10_000; 50_000; 100_000; 200_000 ]

type timing = { build_s : float; recover_s : float }

let time_tree ~make ~recover keys =
  let meter = Meter.create Latency.c300_100 in
  let pool = Pmem.create meter in
  let t0 = Meter.sim_ns meter in
  let insert = make pool in
  Array.iteri (fun i key -> insert ~key ~value:(Keygen.value_for i)) keys;
  let build_s = (Meter.sim_ns meter -. t0) /. 1e9 in
  Pmem.crash pool;
  let t1 = Meter.sim_ns meter in
  let count = recover pool in
  let recover_s = (Meter.sim_ns meter -. t1) /. 1e9 in
  if count <> Array.length keys then
    failwith (Printf.sprintf "recovered %d of %d records" count (Array.length keys));
  { build_s; recover_s }

let run ~scale =
  let sizes =
    List.map (fun n -> max 1_000 (int_of_float (float_of_int n *. scale))) base_sizes
  in
  let rows =
    List.map
      (fun n ->
        let keys = Keygen.generate Keygen.Random n in
        let hart =
          time_tree keys
            ~make:(fun pool ->
              let h = Hart.create pool in
              fun ~key ~value -> Hart.insert h ~key ~value)
            ~recover:(fun pool -> Hart.count (Hart.recover pool))
        in
        let fp =
          time_tree keys
            ~make:(fun pool ->
              let f = Fptree.create pool in
              fun ~key ~value -> Fptree.insert f ~key ~value)
            ~recover:(fun pool -> Fptree.count (Fptree.recover pool))
        in
        ( Printf.sprintf "%dk" (n / 1000),
          [ hart.build_s; hart.recover_s; fp.build_s; fp.recover_s ] ))
      sizes
  in
  Report.print_table
    ~title:"Fig 10(c): Build vs recovery time (s) -- Random, 300/100"
    ~col_names:[ "HART build"; "HART recov"; "FPTree build"; "FPTree recov" ]
    ~rows
