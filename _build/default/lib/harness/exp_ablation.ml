(** Ablations of HART's design levers (beyond the paper's figures, as
    DESIGN.md's per-experiment index calls out):

    - [kh] sweep — the hash-key length trades hash-table fan-out against
      ART depth (§III-A.1 fixes kh = 2 for all experiments);
    - selective persistence — HART with internal nodes forced onto PM
      under a WOART-style protocol, isolating what §III-A.2 buys;
    - event diagnostics — flushes, PM read misses and allocator calls per
      operation for all four trees: the mechanism behind every "who wins"
      in Figs. 4-9. *)

module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Pmem = Hart_pmem.Pmem
module Hart = Hart_core.Hart
module Index_intf = Hart_baselines.Index_intf
module Keygen = Hart_workloads.Keygen
module Workload = Hart_workloads.Workload

let default_records = 20_000

let hart_instance ?kh ?internal_nodes () =
  let meter = Meter.create ~llc_bytes:Runner.harness_llc_bytes Latency.c300_300 in
  let pool = Pmem.create meter in
  let ops = Hart_baselines.Hart_index.ops (Hart.create ?kh ?internal_nodes pool) in
  { Runner.pool; meter; ops }

let measure_ins_search inst keys =
  let ins = Runner.measure inst (Workload.insert_trace keys Keygen.value_for) in
  let sea = Runner.measure inst (Workload.search_trace keys) in
  (Runner.avg_us ins, Runner.avg_us sea)

let kh_sweep ~scale =
  let n = int_of_float (float_of_int default_records *. scale) in
  let keys = Keygen.generate Keygen.Random n in
  Report.print_table
    ~title:
      (Printf.sprintf
         "Ablation A1: hash-key length kh (HART, Random, %d records, 300/300)" n)
    ~col_names:[ "insert us/op"; "search us/op" ]
    ~rows:
      (List.map
         (fun kh ->
           let inst = hart_instance ~kh () in
           let ins, sea = measure_ins_search inst keys in
           (Printf.sprintf "kh=%d" kh, [ ins; sea ]))
         [ 1; 2; 4; 8 ])

let selective_persistence ~scale =
  let n = int_of_float (float_of_int default_records *. scale) in
  let keys = Keygen.generate Keygen.Random n in
  Report.print_table
    ~title:
      (Printf.sprintf
         "Ablation A2: selective persistence (HART internal nodes, %d records, 300/300)"
         n)
    ~col_names:[ "insert us/op"; "search us/op" ]
    ~rows:
      (List.map
         (fun (label, internal_nodes) ->
           let inst = hart_instance ~internal_nodes () in
           let ins, sea = measure_ins_search inst keys in
           (label, [ ins; sea ]))
         [ ("nodes in DRAM (paper)", `Dram); ("nodes on PM (ablated)", `Pm) ])

let event_diagnostics ~scale =
  let n = int_of_float (float_of_int default_records *. scale) in
  let keys = Keygen.generate Keygen.Random n in
  let per_op m counter = float_of_int counter /. float_of_int m.Runner.n_ops in
  List.iter
    (fun (op_label, mk_trace, needs_preload) ->
      Report.print_table
        ~title:
          (Printf.sprintf "Ablation A3: %s events per op (Random, %d records, 300/300)"
             op_label n)
        ~col_names:[ "flushes"; "pm-read misses"; "dram misses"; "allocs" ]
        ~rows:
          (List.map
             (fun tree ->
               let inst = Runner.make tree Latency.c300_300 in
               if needs_preload then Runner.preload inst keys Keygen.value_for;
               let m = Runner.measure inst (mk_trace keys) in
               ( Runner.tree_name tree,
                 [
                   per_op m m.Runner.counters.Meter.flushes;
                   per_op m m.Runner.counters.Meter.pm_read_misses;
                   per_op m m.Runner.counters.Meter.dram_read_misses;
                   per_op m m.Runner.counters.Meter.pm_allocs;
                 ] ))
             Runner.all_trees))
    [
      ("insertion", (fun keys -> Workload.insert_trace keys Keygen.value_for), false);
      ("search", (fun keys -> Workload.search_trace keys), true);
      ("update", (fun keys -> Workload.update_trace keys Keygen.value_for), true);
      ("deletion", (fun keys -> Workload.delete_trace keys), true);
    ]

let value_sizes ~scale =
  (* §III-A.5: variable-size values via 8/16/32-byte classes (the last
     is the extension the paper describes). Larger classes persist more
     lines per value and dilute chunk capacity. *)
  let n = int_of_float (float_of_int default_records *. scale) in
  let keys = Keygen.generate Keygen.Random n in
  Report.print_table
    ~title:
      (Printf.sprintf
         "Ablation A4: value size classes (HART, Random, %d records, 300/300)" n)
    ~col_names:[ "insert us/op"; "update us/op"; "pm MB" ]
    ~rows:
      (List.map
         (fun (label, value_of) ->
           let inst = hart_instance () in
           let ins =
             Runner.avg_us (Runner.measure inst (Workload.insert_trace keys value_of))
           in
           let upd =
             Runner.avg_us
               (Runner.measure inst (Workload.update_trace keys value_of))
           in
           let mb =
             float_of_int (inst.Runner.ops.Index_intf.pm_bytes ()) /. 1024. /. 1024.
           in
           (label, [ ins; upd; mb ]))
         [
           ("7-byte values (Val8)", Keygen.value_for);
           ("15-byte values (Val16)", Keygen.wide_value_for);
           ("30-byte values (Val32)", fun i -> Printf.sprintf "wide-value-%018d" i);
         ])

let radix_lineage ~scale =
  (* Extra baseline beyond the paper's figures: WORT, the first of the
     FAST'17 radix trees (§II-C), against its successors. Its fixed
     16-ary nodes make descents deeper, which PM read latency punishes —
     the reason WOART superseded it and the paper benchmarks WOART. *)
  let n = int_of_float (float_of_int default_records *. scale) in
  let keys = Keygen.generate Keygen.Random n in
  let wort_instance () =
    let meter = Meter.create ~llc_bytes:Runner.harness_llc_bytes Latency.c300_300 in
    let pool = Pmem.create meter in
    { Runner.pool; meter; ops = Hart_baselines.Wort.ops (Hart_baselines.Wort.create pool) }
  in
  let row label inst =
    let ins = Runner.measure inst (Workload.insert_trace keys Keygen.value_for) in
    let sea = Runner.measure inst (Workload.search_trace keys) in
    let upd = Runner.measure inst (Workload.update_trace keys Keygen.value_for) in
    let del = Runner.measure inst (Workload.delete_trace keys) in
    ( label,
      [ Runner.avg_us ins; Runner.avg_us sea; Runner.avg_us upd; Runner.avg_us del ] )
  in
  Report.print_table
    ~title:
      (Printf.sprintf
         "Extra E1: the FAST'17 radix lineage, us/op (Random, %d records, 300/300)" n)
    ~col_names:[ "insert"; "search"; "update"; "delete" ]
    ~rows:
      [
        row "WORT" (wort_instance ());
        row "WOART" (Runner.make Runner.WOART Latency.c300_300);
        row "ART+CoW" (Runner.make Runner.ART_COW Latency.c300_300);
        row "HART" (Runner.make Runner.HART Latency.c300_300);
      ]

let bptree_lineage ~scale =
  (* The B+-tree side of §II-C: CDDS, NV-Tree and wB+-Tree, the trees
     FPTree (and then the radix family) was shown to beat. NV-Tree's append-only
     leaves make writes cheap but searches scan unsorted history, and its
     splits rebuild the whole inner index; wB+-Tree pays PM descents plus
     logged splits. *)
  let n = int_of_float (float_of_int default_records *. scale) in
  let keys = Keygen.generate Keygen.Random n in
  let instance ops_of create =
    let meter = Meter.create ~llc_bytes:Runner.harness_llc_bytes Latency.c300_300 in
    let pool = Pmem.create meter in
    { Runner.pool; meter; ops = ops_of (create pool) }
  in
  let row label inst =
    let ins = Runner.measure inst (Workload.insert_trace keys Keygen.value_for) in
    let sea = Runner.measure inst (Workload.search_trace keys) in
    let upd = Runner.measure inst (Workload.update_trace keys Keygen.value_for) in
    let del = Runner.measure inst (Workload.delete_trace keys) in
    ( label,
      [ Runner.avg_us ins; Runner.avg_us sea; Runner.avg_us upd; Runner.avg_us del ] )
  in
  Report.print_table
    ~title:
      (Printf.sprintf
         "Extra E2: the B+-tree lineage, us/op (Random, %d records, 300/300)" n)
    ~col_names:[ "insert"; "search"; "update"; "delete" ]
    ~rows:
      [
        row "CDDS" (instance Hart_baselines.Cdds_btree.ops Hart_baselines.Cdds_btree.create);
        row "NV-Tree" (instance Hart_baselines.Nv_tree.ops Hart_baselines.Nv_tree.create);
        row "wB+Tree" (instance Hart_baselines.Wb_tree.ops Hart_baselines.Wb_tree.create);
        row "FPTree" (Runner.make Runner.FPTREE Latency.c300_300);
        row "HART" (Runner.make Runner.HART Latency.c300_300);
      ]

let run ~scale =
  kh_sweep ~scale;
  selective_persistence ~scale;
  value_sizes ~scale;
  radix_lineage ~scale;
  bptree_lineage ~scale;
  event_diagnostics ~scale
