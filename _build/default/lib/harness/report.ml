let fmt_f v = Printf.sprintf "%.3f" v

let print_table_s ~title ~col_names ~rows =
  let headers = "" :: col_names in
  let body = List.map (fun (label, cells) -> label :: cells) rows in
  let all = headers :: body in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init n_cols width in
  Printf.printf "\n%s\n" title;
  Printf.printf "%s\n" (String.make (String.length title) '-');
  List.iter
    (fun row ->
      List.iteri
        (fun c w ->
          let cell = Option.value (List.nth_opt row c) ~default:"" in
          Printf.printf "%-*s  " w cell)
        widths;
      print_newline ())
    all;
  (* tables appear as they are produced even when stdout is a file *)
  flush stdout

let print_table ~title ~col_names ~rows =
  print_table_s ~title ~col_names
    ~rows:(List.map (fun (label, cells) -> (label, List.map fmt_f cells)) rows)

let ratio baseline ours = if baseline <= 0. || ours <= 0. then 0. else baseline /. ours
