(** Bit-level helpers shared by the persistent layouts.

    The EPallocator chunk header (Fig. 2 of the paper) packs a 56-bit
    occupancy bitmap, a 6-bit next-free index and a 2-bit full indicator
    into one 8-byte word; these helpers implement the packing. *)

val test : int64 -> int -> bool
(** [test word i] is bit [i] (0 = least significant) of [word]. *)

val set : int64 -> int -> int64
(** [set word i] has bit [i] forced to 1. *)

val clear : int64 -> int -> int64
(** [clear word i] has bit [i] forced to 0. *)

val popcount : int64 -> int
(** Number of set bits. *)

val lowest_zero : int64 -> width:int -> int option
(** [lowest_zero word ~width] is the index of the least-significant zero
    bit among bits \[0, width), or [None] if those bits are all ones. *)

val lowest_one : int64 -> width:int -> int option
(** Least-significant set bit among bits \[0, width), if any. *)

val get_u64 : Bytes.t -> int -> int64
(** Little-endian unaligned 64-bit load. *)

val set_u64 : Bytes.t -> int -> int64 -> unit
(** Little-endian unaligned 64-bit store. *)
