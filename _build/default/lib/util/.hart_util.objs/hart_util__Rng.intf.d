lib/util/rng.mli:
