lib/util/bits.mli: Bytes
