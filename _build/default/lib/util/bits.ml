let test word i = Int64.(logand (shift_right_logical word i) 1L) = 1L
let set word i = Int64.(logor word (shift_left 1L i))
let clear word i = Int64.(logand word (lognot (shift_left 1L i)))

let popcount word =
  let rec go acc w =
    if w = 0L then acc
    else go (acc + 1) Int64.(logand w (sub w 1L))
  in
  go 0 word

let lowest_zero word ~width =
  let rec go i =
    if i >= width then None
    else if not (test word i) then Some i
    else go (i + 1)
  in
  go 0

let lowest_one word ~width =
  let rec go i =
    if i >= width then None
    else if test word i then Some i
    else go (i + 1)
  in
  go 0

let get_u64 b off = Bytes.get_int64_le b off
let set_u64 b off v = Bytes.set_int64_le b off v
