type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. Chosen for statistical quality at 3 multiplies
   per output and trivially snapshotable state. *)
let next64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  mask mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (mantissa /. 9007199254740992.0)

let bool t = Int64.logand (next64 t) 1L = 1L

let alnum = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

let char_alnum t = alnum.[int t (String.length alnum)]

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = create (next64 t)
