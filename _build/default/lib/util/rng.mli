(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the reproduction flows through this module so that
    workloads, property tests and crash-injection schedules are exactly
    reproducible from a 64-bit seed, independently of OCaml's [Random]
    state and of the host. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy and the original then evolve
    independently. *)

val next64 : t -> int64
(** Next raw 64-bit output of splitmix64. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val char_alnum : t -> char
(** Uniform over the 62 characters A–Z, a–z, 0–9 (the alphabet used by the
    paper's Sequential and Random workloads). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated thread its own stream. *)
