lib/workloads/workload.mli: Hart_baselines Hart_util
