lib/workloads/keygen.ml: Array Buffer Bytes Hart_util Hashtbl Printf String
