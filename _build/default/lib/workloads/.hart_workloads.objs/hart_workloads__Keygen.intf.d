lib/workloads/keygen.mli:
