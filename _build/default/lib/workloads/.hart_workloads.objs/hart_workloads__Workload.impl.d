lib/workloads/workload.ml: Array Hart_baselines Hart_util Keygen Printf
