(** Operation-trace generation: the per-figure basic-operation traces and
    the three YCSB mixed workloads of §IV-C.

    All three mixes use YCSB's Uniform request distribution: every
    preloaded record is equally likely to be addressed. *)

type op =
  | Insert of string * string
  | Search of string
  | Update of string * string
  | Delete of string

type mix = {
  mix_name : string;
  insert_pct : int;
  search_pct : int;
  update_pct : int;
  delete_pct : int;
}

val read_intensive : mix
(** 10 % insert / 70 % search / 10 % update / 10 % delete. *)

val read_modified_write : mix
(** 50 % search / 50 % update. *)

val write_intensive : mix
(** 40 % insert / 20 % search / 40 % update. *)

val mixes : mix list

type distribution = Uniform | Zipfian of float
(** Request distribution over the preloaded records. The paper's three
    mixes all use YCSB's Uniform; [Zipfian s] (YCSB's default shape,
    exponent [s], typically 0.99) is provided for the skew experiments
    beyond the paper. *)

val ycsb :
  ?seed:int64 ->
  ?dist:distribution ->
  mix ->
  preloaded:string array ->
  fresh:string array ->
  n_ops:int ->
  op array
(** An [n_ops]-long trace over a database preloaded with [preloaded]:
    search/update/delete address preloaded records per [dist] (default
    [Uniform], as in the paper); insert consumes keys from [fresh] in
    order.
    @raise Invalid_argument when [fresh] cannot cover the insert share
    or [preloaded] is empty. *)

val zipf_sampler : Hart_util.Rng.t -> n:int -> s:float -> unit -> int
(** A sampler of Zipf-distributed ranks in \[0, n): rank k drawn with
    probability proportional to 1/(k+1)^s. Cumulative table + binary
    search: O(n) setup, O(log n) per draw, exact. *)

val insert_trace : string array -> (int -> string) -> op array
(** One insert per key, in array order, values from the index mapper. *)

val search_trace : ?seed:int64 -> string array -> op array
(** One search per key, in shuffled order (the paper measures point
    lookups of every inserted record). *)

val update_trace : ?seed:int64 -> string array -> (int -> string) -> op array
val delete_trace : ?seed:int64 -> string array -> op array

val apply : Hart_baselines.Index_intf.ops -> op array -> int
(** Run a trace against an index; returns the number of operations that
    found their key (hits), for sanity checks. *)
