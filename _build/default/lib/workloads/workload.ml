module Rng = Hart_util.Rng

type op =
  | Insert of string * string
  | Search of string
  | Update of string * string
  | Delete of string

type mix = {
  mix_name : string;
  insert_pct : int;
  search_pct : int;
  update_pct : int;
  delete_pct : int;
}

let read_intensive =
  { mix_name = "Read-Intensive"; insert_pct = 10; search_pct = 70; update_pct = 10; delete_pct = 10 }

let read_modified_write =
  { mix_name = "Read-Modified-Write"; insert_pct = 0; search_pct = 50; update_pct = 50; delete_pct = 0 }

let write_intensive =
  { mix_name = "Write-Intensive"; insert_pct = 40; search_pct = 20; update_pct = 40; delete_pct = 0 }

let mixes = [ read_intensive; read_modified_write; write_intensive ]

type distribution = Uniform | Zipfian of float

(* Zipf(s) over ranks [0, n): cumulative table + binary search —
   O(n) setup, O(log n) per draw, exact. *)
let zipf_sampler rng ~n ~s =
  if n <= 0 then invalid_arg "Workload.zipf_sampler: empty support";
  if s <= 0. then invalid_arg "Workload.zipf_sampler: s must be positive";
  let cum = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (float_of_int (k + 1) ** -.s);
    cum.(k) <- !acc
  done;
  let total = !acc in
  fun () ->
    let u = Rng.float rng total in
    (* first rank whose cumulative mass reaches u *)
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cum.(mid) < u then go (mid + 1) hi else go lo mid
    in
    go 0 (n - 1)

let ycsb ?(seed = 0xFACEL) ?(dist = Uniform) mix ~preloaded ~fresh ~n_ops =
  if Array.length preloaded = 0 then invalid_arg "Workload.ycsb: empty preload";
  let expected_inserts = n_ops * mix.insert_pct / 100 in
  if Array.length fresh < expected_inserts then
    invalid_arg
      (Printf.sprintf "Workload.ycsb: %d fresh keys cannot cover ~%d inserts"
         (Array.length fresh) expected_inserts);
  let rng = Rng.create seed in
  let next_fresh = ref 0 in
  let pick_preloaded =
    match dist with
    | Uniform -> fun () -> preloaded.(Rng.int rng (Array.length preloaded))
    | Zipfian s ->
        let sample = zipf_sampler rng ~n:(Array.length preloaded) ~s in
        fun () -> preloaded.(sample ())
  in
  Array.init n_ops (fun i ->
      let r = Rng.int rng 100 in
      if r < mix.insert_pct && !next_fresh < Array.length fresh then begin
        let k = fresh.(!next_fresh) in
        incr next_fresh;
        Insert (k, Keygen.value_for i)
      end
      else if r < mix.insert_pct + mix.search_pct then Search (pick_preloaded ())
      else if r < mix.insert_pct + mix.search_pct + mix.update_pct then
        Update (pick_preloaded (), Keygen.value_for i)
      else Delete (pick_preloaded ()))

let insert_trace keys value_of =
  Array.mapi (fun i k -> Insert (k, value_of i)) keys

let shuffled ?(seed = 0xD15CL) keys =
  let a = Array.copy keys in
  Rng.shuffle (Rng.create seed) a;
  a

let search_trace ?seed keys = Array.map (fun k -> Search k) (shuffled ?seed keys)

let update_trace ?seed keys value_of =
  Array.mapi (fun i k -> Update (k, value_of i)) (shuffled ?seed keys)

let delete_trace ?seed keys = Array.map (fun k -> Delete k) (shuffled ?seed keys)

let apply (ops : Hart_baselines.Index_intf.ops) trace =
  let hits = ref 0 in
  Array.iter
    (function
      | Insert (key, value) ->
          ops.Hart_baselines.Index_intf.insert ~key ~value;
          incr hits
      | Search k -> if ops.Hart_baselines.Index_intf.search k <> None then incr hits
      | Update (key, value) ->
          if ops.Hart_baselines.Index_intf.update ~key ~value then incr hits
      | Delete k -> if ops.Hart_baselines.Index_intf.delete k then incr hits)
    trace;
  !hits
