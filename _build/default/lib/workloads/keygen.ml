module Rng = Hart_util.Rng

type spec = Dictionary | Sequential | Random

let name = function
  | Dictionary -> "Dictionary"
  | Sequential -> "Sequential"
  | Random -> "Random"

let of_name s =
  match String.lowercase_ascii s with
  | "dictionary" -> Some Dictionary
  | "sequential" -> Some Sequential
  | "random" -> Some Random
  | _ -> None

let all = [ Dictionary; Sequential; Random ]


(* ------------------------------------------------------------------ *)
(* Sequential: base-62 counting, fixed width, most significant first.  *)

let seq_width = 8

(* byte-sorted so that numeric order = lexicographic order *)
let sorted_alnum = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

let sequential_key i =
  let b = Bytes.make seq_width sorted_alnum.[0] in
  let rec go pos v =
    if v > 0 && pos >= 0 then begin
      Bytes.set b pos sorted_alnum.[v mod 62];
      go (pos - 1) (v / 62)
    end
  in
  go (seq_width - 1) i;
  Bytes.to_string b

(* ------------------------------------------------------------------ *)
(* Random: distinct variable-size strings, 5-16 characters.            *)

let random_keys rng n =
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n "" in
  let filled = ref 0 in
  while !filled < n do
    let len = Rng.int_in rng 5 16 in
    let k = String.init len (fun _ -> Rng.char_alnum rng) in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out.(!filled) <- k;
      incr filled
    end
  done;
  out

(* ------------------------------------------------------------------ *)
(* Dictionary: weighted syllable model. English-like in the properties
   the experiments care about: first-letter skew, 1-24 length range,
   lowercase, lots of shared prefixes.                                 *)

let onsets =
  [|
    "s"; "c"; "p"; "b"; "t"; "d"; "m"; "r"; "f"; "h"; "l"; "g"; "w"; "n";
    "st"; "ch"; "br"; "pr"; "tr"; "sh"; "cr"; "gr"; "pl"; "fr"; "k"; "v";
    "th"; "sp"; "cl"; "bl"; "j"; "qu"; "sc"; "fl"; "dr"; "gl"; "sl"; "y";
    "z"; "wh"; "sw"; "str"; "x"; "";
  |]

let nuclei = [| "a"; "e"; "i"; "o"; "u"; "ai"; "ea"; "ou"; "io"; "oo"; "ie" |]

let codas =
  [|
    ""; "n"; "t"; "r"; "s"; "l"; "d"; "m"; "ng"; "ck"; "st"; "nt"; "ss";
    "ll"; "p"; "g"; "rd"; "nd"; "k"; "b"; "x"; "ct"; "sm"; "th";
  |]

let suffixes =
  [| ""; ""; ""; "s"; "ed"; "ing"; "er"; "ly"; "ness"; "tion"; "able"; "ment" |]

(* Zipf-ish pick: low indices much more likely, giving the skewed
   onset/first-letter distribution of real English. *)
let skewed_pick rng arr =
  let n = Array.length arr in
  let r = Rng.float rng 1.0 in
  let idx = int_of_float (float_of_int n *. r *. r) in
  arr.(min idx (n - 1))

let dictionary_word rng =
  let syllables = 1 + Rng.int rng 4 in
  let buf = Buffer.create 16 in
  for _ = 1 to syllables do
    Buffer.add_string buf (skewed_pick rng onsets);
    Buffer.add_string buf (skewed_pick rng nuclei);
    Buffer.add_string buf (skewed_pick rng codas)
  done;
  Buffer.add_string buf (skewed_pick rng suffixes);
  let w = Buffer.contents buf in
  if String.length w > 24 then String.sub w 0 24 else w

let dictionary_universe = 1_000_000

let dictionary_keys rng n =
  if n > dictionary_universe then
    invalid_arg
      (Printf.sprintf "Keygen: dictionary supports up to %d words" dictionary_universe);
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make n "" in
  let filled = ref 0 in
  while !filled < n do
    let w = dictionary_word rng in
    if String.length w > 0 && not (Hashtbl.mem seen w) then begin
      Hashtbl.add seen w ();
      out.(!filled) <- w;
      incr filled
    end
  done;
  out

let generate ?(seed = 0x5EEDL) spec n =
  if n < 0 then invalid_arg "Keygen.generate: negative count";
  let rng = Rng.create seed in
  match spec with
  | Sequential -> Array.init n sequential_key
  | Random -> random_keys rng n
  | Dictionary -> dictionary_keys rng n

let value_for i = Printf.sprintf "v%06d" (i mod 1_000_000)
let wide_value_for i = Printf.sprintf "value%010d" (i mod 1_000_000_000)
