(** Key-set generators for the paper's three workloads (§IV-A).

    - {b Dictionary}: the paper uses a 466,544-word English word list
      [19]. That file is not redistributable here, so {!dictionary} is a
      deterministic synthetic English-like generator (weighted
      onset/nucleus/coda syllable model) matching the properties the
      experiments depend on: ~466k distinct words, 1-24 characters,
      lowercase, heavily skewed first-letter (= hash key) distribution.
    - {b Sequential}: fixed-width strings counting in the 62-character
      alphabet A-Z a-z 0-9, so consecutive keys share long prefixes and
      the hash key changes only every 62² keys.
    - {b Random}: distinct variable-size strings of 5-16 characters from
      the same alphabet, as in the paper.

    All generators are deterministic in their seed. *)

type spec = Dictionary | Sequential | Random

val name : spec -> string
val of_name : string -> spec option

val all : spec list
(** In the order the paper's figures present them. *)

val generate : ?seed:int64 -> spec -> int -> string array
(** [generate spec n] returns [n] distinct keys. Sequential keys are
    produced in order; Dictionary and Random key sets are deterministic
    for a given seed.
    @raise Invalid_argument if [n < 0] or beyond the generator's
    universe. *)

val dictionary_universe : int
(** How many distinct words {!Dictionary} can produce (≥ the paper's
    466,544). *)

val value_for : int -> string
(** 7-byte payload for record [i] — sized to exercise the paper's 8-byte
    value class. *)

val wide_value_for : int -> string
(** 15-byte payload exercising the 16-byte value class. *)
