(** Memory latency configurations.

    The paper evaluates three PM write/read latency settings — 300/100,
    300/300 and 600/300 ns — against a measured DRAM latency of 100 ns
    (§IV-A). Emulated operation times are produced by charging these
    latencies to counted memory events, which is the paper's own offline
    methodology (its equations (1)–(2) reduce to charging the PM−DRAM
    latency difference per stalled access). *)

type config = {
  name : string;  (** e.g. ["300/100"], as the figures label them *)
  pm_write_ns : float;  (** latency charged per persisted cache line *)
  pm_read_ns : float;  (** latency of a PM read that misses the LLC *)
  dram_ns : float;  (** latency of a DRAM read that misses the LLC *)
  llc_hit_ns : float;  (** latency of a last-level-cache hit *)
  fence_ns : float;  (** cost of an MFENCE *)
}

val c300_100 : config
(** PM write 300 ns / PM read 100 ns — PM reads cost the same as DRAM. *)

val c300_300 : config
(** PM write 300 ns / PM read 300 ns. *)

val c600_300 : config
(** PM write 600 ns / PM read 300 ns. *)

val dram_only : config
(** All latencies set to DRAM values: the paper's first-round baseline
    where PM is replaced by plain DRAM. *)

val all : config list
(** The three paper configurations, in figure order. *)

val by_name : string -> config option
(** Look a configuration up by its [name] field. *)

(** {1 The paper's offline read-latency equations}

    §IV-A, equations (1) and (2), after Dulloor and Quartz: the extra
    time a run would have spent if its remote-node (PM-emulating) LOAD
    stalls had the configured PM latency instead of DRAM's. The
    simulation charges reads online instead, but these functions are
    provided (and unit-tested) as the reference formulation. *)

val stall_cycles : stalled:float -> config -> float
(** Equation (1): [stalled × (L_PM − L_DRAM) / L_DRAM], where [stalled]
    is the cycle count the processor spent on remote LOADs. *)

val extra_read_latency_s : stalled:float -> cpu_hz:float -> config -> float
(** Equation (2): {!stall_cycles} over the CPU frequency — seconds of
    added read latency. *)
