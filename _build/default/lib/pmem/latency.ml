type config = {
  name : string;
  pm_write_ns : float;
  pm_read_ns : float;
  dram_ns : float;
  llc_hit_ns : float;
  fence_ns : float;
}

let base ~name ~pm_write_ns ~pm_read_ns =
  { name; pm_write_ns; pm_read_ns; dram_ns = 100.; llc_hit_ns = 5.; fence_ns = 10. }

let c300_100 = base ~name:"300/100" ~pm_write_ns:300. ~pm_read_ns:100.
let c300_300 = base ~name:"300/300" ~pm_write_ns:300. ~pm_read_ns:300.
let c600_300 = base ~name:"600/300" ~pm_write_ns:600. ~pm_read_ns:300.
let dram_only = base ~name:"dram" ~pm_write_ns:100. ~pm_read_ns:100.
let all = [ c300_100; c300_300; c600_300 ]

let by_name name =
  List.find_opt (fun c -> c.name = name) (dram_only :: all)

let stall_cycles ~stalled config =
  stalled *. (config.pm_read_ns -. config.dram_ns) /. config.dram_ns

let extra_read_latency_s ~stalled ~cpu_hz config =
  stall_cycles ~stalled config /. cpu_hz
