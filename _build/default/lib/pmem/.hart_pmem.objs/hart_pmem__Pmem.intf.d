lib/pmem/pmem.mli: Format Hart_util Meter
