lib/pmem/meter.ml: Array Format Latency
