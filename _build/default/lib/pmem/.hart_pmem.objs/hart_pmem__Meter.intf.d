lib/pmem/meter.mli: Format Latency
