lib/pmem/latency.ml: List
