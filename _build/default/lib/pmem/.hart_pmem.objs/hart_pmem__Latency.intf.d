lib/pmem/latency.mli:
