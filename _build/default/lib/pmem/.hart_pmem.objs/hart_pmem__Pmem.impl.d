lib/pmem/pmem.ml: Bytes Format Fun Hart_util Hashtbl Int64 List Meter Printf String
