type space = Dram | Pm

type counters = {
  pm_reads : int;
  pm_writes : int;
  dram_reads : int;
  dram_writes : int;
  pm_read_misses : int;
  dram_read_misses : int;
  flushes : int;
  fences : int;
  persist_calls : int;
  evictions : int;
  pm_allocs : int;
  pm_frees : int;
  sim_ns : float;
}

type t = {
  config : Latency.config;
  mutable c : counters;
  (* Direct-mapped LLC: tags.(set) holds the encoded line address resident
     in that set, or -1 when empty. Lines from the PM and DRAM address
     spaces are distinguished by the low tag bit. *)
  tags : int array;
  set_mask : int;
  mutable dram_brk : int;
  mutable dram_live : int;
}

let zero =
  {
    pm_reads = 0;
    pm_writes = 0;
    dram_reads = 0;
    dram_writes = 0;
    pm_read_misses = 0;
    dram_read_misses = 0;
    flushes = 0;
    fences = 0;
    persist_calls = 0;
    evictions = 0;
    pm_allocs = 0;
    pm_frees = 0;
    sim_ns = 0.;
  }

let line_bytes = 64

let create ?(llc_bytes = 20 * 1024 * 1024) config =
  let lines = max 64 (llc_bytes / line_bytes) in
  (* round down to a power of two so [land] can select the set *)
  let rec pow2 acc = if acc * 2 > lines then acc else pow2 (acc * 2) in
  let lines = pow2 64 in
  {
    config;
    c = zero;
    tags = Array.make lines (-1);
    set_mask = lines - 1;
    dram_brk = line_bytes;
    dram_live = 0;
  }

let config t = t.config

let encode space addr =
  let line = addr / line_bytes in
  match space with Dram -> (line * 2) + 1 | Pm -> line * 2

let charge_ns t ns = t.c <- { t.c with sim_ns = t.c.sim_ns +. ns }

let access t space ~addr ~write =
  let enc = encode space addr in
  let set = enc land t.set_mask in
  let hit = t.tags.(set) = enc in
  if write then begin
    t.tags.(set) <- enc;
    (match space with
    | Pm -> t.c <- { t.c with pm_writes = t.c.pm_writes + 1 }
    | Dram -> t.c <- { t.c with dram_writes = t.c.dram_writes + 1 });
    charge_ns t t.config.llc_hit_ns
  end
  else begin
    (match space with
    | Pm -> t.c <- { t.c with pm_reads = t.c.pm_reads + 1 }
    | Dram -> t.c <- { t.c with dram_reads = t.c.dram_reads + 1 });
    if hit then charge_ns t t.config.llc_hit_ns
    else begin
      t.tags.(set) <- enc;
      match space with
      | Pm ->
          t.c <- { t.c with pm_read_misses = t.c.pm_read_misses + 1 };
          charge_ns t t.config.pm_read_ns
      | Dram ->
          t.c <- { t.c with dram_read_misses = t.c.dram_read_misses + 1 };
          charge_ns t t.config.dram_ns
    end
  end

let access_range t space ~addr ~len ~write =
  if len > 0 then begin
    let first = addr / line_bytes and last = (addr + len - 1) / line_bytes in
    for line = first to last do
      access t space ~addr:(line * line_bytes) ~write
    done
  end

let flush_line t ~addr =
  let enc = encode Pm addr in
  let set = enc land t.set_mask in
  if t.tags.(set) = enc then t.tags.(set) <- -1;
  t.c <- { t.c with flushes = t.c.flushes + 1 };
  charge_ns t t.config.pm_write_ns

let fence t =
  t.c <- { t.c with fences = t.c.fences + 1 };
  charge_ns t t.config.fence_ns

let persist_call t = t.c <- { t.c with persist_calls = t.c.persist_calls + 1 }

(* Underlying-PM-allocator cost model (§III-A.4: "existing persistent
   memory allocators exhibit poor performance when allocating numerous
   small objects"): an allocation persists its metadata — two ordered PM
   writes plus bookkeeping; a free persists one. EPallocator pays this
   once per 56-object chunk; the baselines pay it per object. *)
let pm_alloc t =
  t.c <- { t.c with pm_allocs = t.c.pm_allocs + 1 };
  charge_ns t ((2. *. t.config.pm_write_ns) +. 100.)

let pm_free t =
  t.c <- { t.c with pm_frees = t.c.pm_frees + 1 };
  charge_ns t (t.config.pm_write_ns +. 50.)

let persist_range t ~addr ~len =
  t.c <- { t.c with persist_calls = t.c.persist_calls + 1 };
  fence t;
  if len > 0 then begin
    let first = addr / line_bytes and last = (addr + len - 1) / line_bytes in
    for line = first to last do
      flush_line t ~addr:(line * line_bytes)
    done
  end;
  fence t

let write_range t space ~addr ~len = access_range t space ~addr ~len ~write:true
let eviction t = t.c <- { t.c with evictions = t.c.evictions + 1 }

let dram_alloc t size =
  let addr = t.dram_brk in
  (* keep distinct structures on distinct lines, as malloc would *)
  let rounded = (size + line_bytes - 1) / line_bytes * line_bytes in
  t.dram_brk <- t.dram_brk + rounded;
  t.dram_live <- t.dram_live + size;
  addr

let dram_free t ~addr:_ ~size = t.dram_live <- max 0 (t.dram_live - size)
let dram_live_bytes t = t.dram_live
let counters t = t.c
let sim_ns t = t.c.sim_ns
let reset t = t.c <- zero
let invalidate_cache t = Array.fill t.tags 0 (Array.length t.tags) (-1)

let diff before after =
  {
    pm_reads = after.pm_reads - before.pm_reads;
    pm_writes = after.pm_writes - before.pm_writes;
    dram_reads = after.dram_reads - before.dram_reads;
    dram_writes = after.dram_writes - before.dram_writes;
    pm_read_misses = after.pm_read_misses - before.pm_read_misses;
    dram_read_misses = after.dram_read_misses - before.dram_read_misses;
    flushes = after.flushes - before.flushes;
    fences = after.fences - before.fences;
    persist_calls = after.persist_calls - before.persist_calls;
    evictions = after.evictions - before.evictions;
    pm_allocs = after.pm_allocs - before.pm_allocs;
    pm_frees = after.pm_frees - before.pm_frees;
    sim_ns = after.sim_ns -. before.sim_ns;
  }

let pp_counters ppf c =
  Format.fprintf ppf
    "@[<v>pm_reads=%d (misses=%d) pm_writes=%d@ dram_reads=%d (misses=%d) \
     dram_writes=%d@ flushes=%d fences=%d persists=%d evictions=%d \
     allocs=%d frees=%d@ sim=%.0f ns@]"
    c.pm_reads c.pm_read_misses c.pm_writes c.dram_reads c.dram_read_misses
    c.dram_writes c.flushes c.fences c.persist_calls c.evictions c.pm_allocs
    c.pm_frees c.sim_ns
