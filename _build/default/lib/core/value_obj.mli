(** Persistent value-object codec.

    A value object occupies one slot of a value chunk (class Val8 / Val16
    / Val32) and stores a 1-byte payload length followed by the payload,
    so the commit granularity is a single slot. HART supports
    variable-size values through these size classes (§III-A.5). *)

val write : Hart_pmem.Pmem.t -> obj:int -> string -> unit
(** Store payload and length, persist the object (Algorithm 1 line 12 /
    Algorithm 3 line 5).
    @raise Invalid_argument beyond 31 bytes. *)

val read : Hart_pmem.Pmem.t -> obj:int -> string
(** Read the payload back. *)

val cls_for : string -> Chunk.cls
(** The value class that stores this payload. *)
