lib/core/hart_mt.ml: Fun Hart Hashtbl Mutex Rwlock
