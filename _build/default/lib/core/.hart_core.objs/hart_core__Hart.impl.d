lib/core/hart.ml: Chunk Epalloc Hart_art Hart_pmem Hash_dir Hashtbl Leaf List Microlog Printf String Value_obj
