lib/core/hart_stats.mli: Format Hart
