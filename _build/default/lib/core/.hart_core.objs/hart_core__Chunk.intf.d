lib/core/chunk.mli: Format Hart_pmem
