lib/core/leaf.mli: Hart_pmem
