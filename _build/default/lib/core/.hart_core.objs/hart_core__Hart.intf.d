lib/core/hart.mli: Epalloc Hart_art Hart_pmem
