lib/core/value_obj.mli: Chunk Hart_pmem
