lib/core/hash_dir.ml: Array Char Hart_pmem Int64 Printf String
