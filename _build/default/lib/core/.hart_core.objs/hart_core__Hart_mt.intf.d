lib/core/hart_mt.mli: Hart Hart_pmem Rwlock
