lib/core/rwlock.mli:
