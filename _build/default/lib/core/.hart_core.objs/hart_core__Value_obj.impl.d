lib/core/value_obj.ml: Chunk Hart_pmem String
