lib/core/leaf.ml: Hart_pmem Int64 Printf String
