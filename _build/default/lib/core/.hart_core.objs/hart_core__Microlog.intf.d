lib/core/microlog.mli: Chunk Hart_pmem
