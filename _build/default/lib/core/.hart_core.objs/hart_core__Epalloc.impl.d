lib/core/epalloc.ml: Array Chunk Hart_pmem Hart_util Hashtbl Int64 Leaf List Microlog Printf
