lib/core/microlog.ml: Chunk Hart_pmem Int64 Printf String
