lib/core/hart_stats.ml: Chunk Epalloc Format Hart Hart_art
