lib/core/epalloc.mli: Chunk Hart_pmem Microlog
