lib/core/hash_dir.mli: Hart_pmem
