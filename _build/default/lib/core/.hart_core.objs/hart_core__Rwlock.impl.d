lib/core/rwlock.ml: Condition Fun Mutex
