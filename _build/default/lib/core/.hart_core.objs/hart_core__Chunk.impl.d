lib/core/chunk.ml: Format Hart_pmem Hart_util Int64 Printf
