type t = {
  hart : Hart.t;
  pm : Mutex.t;  (* serialises pool/meter/directory mutation *)
  locks : (string, Rwlock.t) Hashtbl.t;  (* hash key -> per-ART lock *)
  locks_mu : Mutex.t;
}

let create ?kh pool =
  {
    hart = Hart.create ?kh pool;
    pm = Mutex.create ();
    locks = Hashtbl.create 256;
    locks_mu = Mutex.create ();
  }

let recover pool =
  {
    hart = Hart.recover pool;
    pm = Mutex.create ();
    locks = Hashtbl.create 256;
    locks_mu = Mutex.create ();
  }

let underlying t = t.hart

let art_lock t key =
  let hash_key, _ = Hart.split_key t.hart key in
  Mutex.lock t.locks_mu;
  let lock =
    match Hashtbl.find_opt t.locks hash_key with
    | Some l -> l
    | None ->
        let l = Rwlock.create () in
        Hashtbl.add t.locks hash_key l;
        l
  in
  Mutex.unlock t.locks_mu;
  lock

let serialised t f =
  Mutex.lock t.pm;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.pm) f

let insert t ~key ~value =
  Rwlock.with_write (art_lock t key) (fun () ->
      serialised t (fun () -> Hart.insert t.hart ~key ~value))

let search t key =
  Rwlock.with_read (art_lock t key) (fun () ->
      serialised t (fun () -> Hart.search t.hart key))

let update t ~key ~value =
  Rwlock.with_write (art_lock t key) (fun () ->
      serialised t (fun () -> Hart.update t.hart ~key ~value))

let delete t key =
  Rwlock.with_write (art_lock t key) (fun () ->
      serialised t (fun () -> Hart.delete t.hart key))

let rmw t ~key f =
  Rwlock.with_write (art_lock t key) (fun () ->
      serialised t (fun () ->
          let value = f (Hart.search t.hart key) in
          Hart.insert t.hart ~key ~value))

let count t = serialised t (fun () -> Hart.count t.hart)
