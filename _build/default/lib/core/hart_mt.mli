(** Concurrent front end to {!Hart} (§III-A.3, §IV-G).

    The paper's protocol: one reader/writer lock per ART; writes to
    distinct ARTs proceed in parallel, reads on the same ART share its
    lock, and at most one writer works on an ART at a time. This module
    implements exactly that admission protocol over OCaml 5 domains: an
    operation first resolves its hash key to the per-ART lock, then runs
    under it.

    Honest limitation (documented in DESIGN.md): the simulated PM pool
    and its meter are a single shared data structure, so the body of
    every operation additionally serialises on one internal mutex. The
    locking {e protocol} is therefore fully exercised and tested for
    correctness (exclusion, shared reads, no lost updates), but
    wall-clock scaling cannot emerge in-process — Fig. 10d is
    reproduced by the calibrated discrete-event model in
    [Hart_harness.Mt_sim]. *)

type t

val create : ?kh:int -> Hart_pmem.Pmem.t -> t
val recover : Hart_pmem.Pmem.t -> t

val insert : t -> key:string -> value:string -> unit
val search : t -> string -> string option
val update : t -> key:string -> value:string -> bool
val delete : t -> string -> bool

val rmw : t -> key:string -> (string option -> string) -> unit
(** Atomic read-modify-write: runs the function on the key's current
    value and stores the result, all under the key's ART write lock, so
    concurrent [rmw]s on the same key never lose updates. *)

val count : t -> int
(** Live keys (taken under the structure lock). *)

val underlying : t -> Hart.t
(** The wrapped single-threaded HART — only safe to use once all domains
    performing operations have quiesced. *)

val art_lock : t -> string -> Rwlock.t
(** The reader/writer lock guarding the ART of this key's hash prefix
    (created on demand). Exposed for lock-protocol tests. *)
