module Meter = Hart_pmem.Meter

type 'a slot = Empty | Occupied of { key : string; mutable payload : 'a }

type 'a t = {
  meter : Meter.t option;
  mutable slots : 'a slot array;
  mutable mask : int;  (* bucket count - 1, power of two *)
  mutable occupied : int;
  mutable addr : int;  (* synthetic DRAM address of the bucket array *)
}

let slot_bytes = 16 (* modelled C bucket: 8-byte key word + 8-byte pointer *)

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 16

let alloc_addr meter buckets =
  match meter with Some m -> Meter.dram_alloc m (buckets * slot_bytes) | None -> 0

let create ?meter ?(initial_buckets = 1024) () =
  let buckets = round_pow2 initial_buckets in
  {
    meter;
    slots = Array.make buckets Empty;
    mask = buckets - 1;
    occupied = 0;
    addr = alloc_addr meter buckets;
  }

let length t = t.occupied

(* FNV-1a, folded to the positive int range. *)
let hash key =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    key;
  Int64.to_int !h land max_int

let touch t slot ~write =
  match t.meter with
  | None -> ()
  | Some m -> Meter.access m Dram ~addr:(t.addr + (slot * slot_bytes)) ~write

let probe t key =
  (* index of [key]'s slot, or of the first empty slot on its chain *)
  let rec go i =
    touch t i ~write:false;
    match t.slots.(i) with
    | Empty -> i
    | Occupied { key = k; _ } ->
        if String.equal k key then i else go ((i + 1) land t.mask)
  in
  go (hash key land t.mask)

let find t key =
  match t.slots.(probe t key) with
  | Empty -> None
  | Occupied { payload; _ } -> Some payload

let rec insert t key payload =
  let i = probe t key in
  match t.slots.(i) with
  | Occupied o -> o.payload <- payload
  | Empty ->
      if 10 * (t.occupied + 1) > 7 * (t.mask + 1) then begin
        resize t;
        insert t key payload
      end
      else begin
        t.slots.(i) <- Occupied { key; payload };
        touch t i ~write:true;
        t.occupied <- t.occupied + 1
      end

and resize t =
  let old = t.slots in
  let buckets = (t.mask + 1) * 2 in
  (match t.meter with
  | Some m ->
      Meter.dram_free m ~addr:t.addr ~size:((t.mask + 1) * slot_bytes);
      t.addr <- Meter.dram_alloc m (buckets * slot_bytes)
  | None -> ());
  t.slots <- Array.make buckets Empty;
  t.mask <- buckets - 1;
  t.occupied <- 0;
  Array.iter
    (function Empty -> () | Occupied { key; payload } -> insert t key payload)
    old

let remove t key =
  let i = probe t key in
  match t.slots.(i) with
  | Empty -> ()
  | Occupied _ ->
      t.slots.(i) <- Empty;
      touch t i ~write:true;
      t.occupied <- t.occupied - 1;
      (* backward-shift deletion keeps probe chains unbroken: any entry
         whose home position precedes the hole moves back into it *)
      let rec scan hole j =
        match t.slots.(j) with
        | Empty -> ()
        | Occupied { key = k; payload } ->
            let home = hash k land t.mask in
            let dist_hole = (hole - home) land t.mask
            and dist_j = (j - home) land t.mask in
            if dist_hole <= dist_j then begin
              t.slots.(hole) <- Occupied { key = k; payload };
              t.slots.(j) <- Empty;
              touch t hole ~write:true;
              scan j ((j + 1) land t.mask)
            end
            else scan hole ((j + 1) land t.mask)
      in
      scan i ((i + 1) land t.mask)

let iter t f =
  Array.iter
    (function Empty -> () | Occupied { key; payload } -> f key payload)
    t.slots

let fold t ~init ~f =
  Array.fold_left
    (fun acc -> function
      | Empty -> acc
      | Occupied { key; payload } -> f acc key payload)
    init t.slots

let footprint_bytes t = (t.mask + 1) * slot_bytes

let check_invariants t =
  let n = ref 0 in
  Array.iter
    (function
      | Empty -> ()
      | Occupied { key; payload = _ } ->
          incr n;
          if find t key = None then
            failwith (Printf.sprintf "Hash_dir: stored key %S not findable" key))
    t.slots;
  if !n <> t.occupied then
    failwith
      (Printf.sprintf "Hash_dir: occupancy %d <> population %d" t.occupied !n)
