module Pmem = Hart_pmem.Pmem

let max_key_len = 24
let size = 40

let p_value pool ~leaf = Int64.to_int (Pmem.get_u64 pool leaf)

let set_p_value pool ~leaf v =
  Pmem.set_u64 pool leaf (Int64.of_int v);
  Pmem.persist pool ~off:leaf ~len:8

let key pool ~leaf =
  let len = Pmem.get_u8 pool (leaf + 8) in
  if len = 0 then "" else Pmem.get_string pool ~off:(leaf + 9) ~len

let write_key pool ~leaf k =
  let len = String.length k in
  if len > max_key_len then
    invalid_arg
      (Printf.sprintf "key of %d bytes exceeds the %d-byte limit" len max_key_len);
  Pmem.set_u8 pool (leaf + 8) len;
  if len > 0 then Pmem.set_string pool ~off:(leaf + 9) k;
  Pmem.persist pool ~off:(leaf + 8) ~len:(1 + len)

let clear pool ~leaf =
  Pmem.set_string pool ~off:leaf (String.make size '\000')
