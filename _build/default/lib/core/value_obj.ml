module Pmem = Hart_pmem.Pmem

let cls_for payload = Chunk.value_class_for (String.length payload)

let write pool ~obj payload =
  let len = String.length payload in
  ignore (Chunk.value_class_for len : Chunk.cls);
  Pmem.set_u8 pool obj len;
  if len > 0 then Pmem.set_string pool ~off:(obj + 1) payload;
  Pmem.persist pool ~off:obj ~len:(1 + len)

let read pool ~obj =
  let len = Pmem.get_u8 pool obj in
  if len = 0 then "" else Pmem.get_string pool ~off:(obj + 1) ~len
