module Art = Hart_art.Art

type node_histogram = { n4 : int; n16 : int; n48 : int; n256 : int }

type class_stats = {
  chunks : int;
  live_objects : int;
  capacity : int;
  occupancy : float;
  bytes : int;
}

type t = {
  keys : int;
  arts : int;
  hash_buckets_bytes : int;
  art_nodes : node_histogram;
  art_node_bytes : int;
  max_art_height : int;
  avg_art_keys : float;
  leaf_class : class_stats;
  val8_class : class_stats;
  val16_class : class_stats;
  val32_class : class_stats;
  pm_bytes : int;
  dram_bytes : int;
}

let class_stats alloc cls =
  let chunks = Epalloc.chunk_count alloc cls in
  let live_objects = Epalloc.live_objects alloc cls in
  let capacity = chunks * Chunk.objs_per_chunk in
  {
    chunks;
    live_objects;
    capacity;
    occupancy =
      (if capacity = 0 then 0. else float_of_int live_objects /. float_of_int capacity);
    bytes = chunks * Chunk.chunk_bytes cls;
  }

let collect hart =
  let alloc = Hart.alloc hart in
  let hist = ref { n4 = 0; n16 = 0; n48 = 0; n256 = 0 } in
  let node_bytes = ref 0 and max_height = ref 0 and arts = ref 0 in
  Hart.iter_arts hart (fun _hk art ->
      incr arts;
      let n4, n16, n48, n256 = Art.node_histogram art in
      hist :=
        {
          n4 = !hist.n4 + n4;
          n16 = !hist.n16 + n16;
          n48 = !hist.n48 + n48;
          n256 = !hist.n256 + n256;
        };
      node_bytes := !node_bytes + Art.footprint_bytes art;
      max_height := max !max_height (Art.height art));
  {
    keys = Hart.count hart;
    arts = !arts;
    hash_buckets_bytes = Hart.dram_bytes hart - !node_bytes;
    art_nodes = !hist;
    art_node_bytes = !node_bytes;
    max_art_height = !max_height;
    avg_art_keys =
      (if !arts = 0 then 0. else float_of_int (Hart.count hart) /. float_of_int !arts);
    leaf_class = class_stats alloc Chunk.Leaf_c;
    val8_class = class_stats alloc Chunk.Val8;
    val16_class = class_stats alloc Chunk.Val16;
    val32_class = class_stats alloc Chunk.Val32;
    pm_bytes = Hart.pm_bytes hart;
    dram_bytes = Hart.dram_bytes hart;
  }

let pp_class ppf (label, (c : class_stats)) =
  Format.fprintf ppf "%-6s %5d chunks, %7d/%7d objects (%.0f%%), %9d bytes"
    label c.chunks c.live_objects c.capacity (100. *. c.occupancy) c.bytes

let pp ppf t =
  Format.fprintf ppf
    "@[<v>keys            %d@ ARTs            %d (avg %.1f keys, max height %d)@ \
     ART nodes       N4=%d N16=%d N48=%d N256=%d (%d bytes)@ hash buckets    \
     %d bytes@ %a@ %a@ %a@ %a@ PM total        %d bytes@ DRAM total      %d \
     bytes@]"
    t.keys t.arts t.avg_art_keys t.max_art_height t.art_nodes.n4 t.art_nodes.n16
    t.art_nodes.n48 t.art_nodes.n256 t.art_node_bytes t.hash_buckets_bytes
    pp_class ("leaf", t.leaf_class)
    pp_class ("val8", t.val8_class)
    pp_class ("val16", t.val16_class)
    pp_class ("val32", t.val32_class)
    t.pm_bytes t.dram_bytes
