(** Structural statistics of a HART instance — the introspection a
    downstream operator needs to reason about Fig. 10b-style memory
    behaviour: adaptive-node population, chunk occupancy, value-class
    mix, tree shape. *)

type node_histogram = { n4 : int; n16 : int; n48 : int; n256 : int }

type class_stats = {
  chunks : int;  (** chunks in the class's list *)
  live_objects : int;  (** committed bitmap bits *)
  capacity : int;  (** chunks × 56 *)
  occupancy : float;  (** live / capacity, 0 when empty *)
  bytes : int;  (** PM bytes held by the class's chunks *)
}

type t = {
  keys : int;
  arts : int;
  hash_buckets_bytes : int;
  art_nodes : node_histogram;
  art_node_bytes : int;  (** modelled C footprint of all inner nodes *)
  max_art_height : int;
  avg_art_keys : float;  (** keys per ART *)
  leaf_class : class_stats;
  val8_class : class_stats;
  val16_class : class_stats;
  val32_class : class_stats;
  pm_bytes : int;
  dram_bytes : int;
}

val collect : Hart.t -> t
(** Walk the directory, the ARTs and the chunk lists. O(store size). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering (used by [hart_cli stats -v]). *)
