(** Uniform operations record over the four persistent indexes, so the
    benchmark harness drives HART, WOART, ART+CoW and FPTree through the
    same code paths. Implementations come from [Woart.ops], [Art_cow.ops],
    [Fptree.ops] and [Hart_index.ops]. *)

type ops = {
  name : string;
  insert : key:string -> value:string -> unit;
  search : string -> string option;
  update : key:string -> value:string -> bool;  (** false when absent *)
  delete : string -> bool;  (** false when absent *)
  range : lo:string -> hi:string -> (string -> string -> unit) -> unit;
  count : unit -> int;
  dram_bytes : unit -> int;  (** modelled DRAM footprint (Fig. 10b) *)
  pm_bytes : unit -> int;  (** live PM pool bytes (Fig. 10b) *)
}
