module Pmem = Hart_pmem.Pmem
module Meter = Hart_pmem.Meter

let node_cap = 32
let entry_bytes = 64

(* Modelled node layout: 8-byte bitmap, node_cap-byte slot array,
   node_cap 64-byte entries (key + inline value, or separator + child
   pointer in inner nodes). *)
let node_bytes = 8 + node_cap + (node_cap * entry_bytes)
let bitmap_off = 0
let slots_off = 8
let entry_off i = 8 + node_cap + (i * entry_bytes)

type node = LeafW of leaf | InnerW of inner

and leaf = {
  mutable l_keys : string array;  (* sorted logical view *)
  mutable l_vals : string array;
  mutable l_n : int;
  mutable l_next : leaf option;
  l_addr : int;
}

and inner = {
  mutable i_keys : string array;  (* n separators *)
  mutable i_kids : node array;  (* n + 1 children *)
  mutable i_n : int;
  i_addr : int;
}

type t = {
  pool : Pmem.t;
  meter : Meter.t;
  mutable root : node;
  mutable first_leaf : leaf;
  mutable count : int;
}

(* ------------------------------------------------------------------ *)
(* Charged write protocol                                              *)

let touch t addr = Meter.access t.meter Pm ~addr ~write:false

(* small update: entry write, slot-array write, atomic bitmap flip *)
let charge_small_insert t addr slot =
  Meter.write_range t.meter Pm ~addr:(addr + entry_off slot) ~len:entry_bytes;
  Meter.persist_range t.meter ~addr:(addr + entry_off slot) ~len:entry_bytes;
  Meter.write_range t.meter Pm ~addr:(addr + slots_off) ~len:node_cap;
  Meter.persist_range t.meter ~addr:(addr + slots_off) ~len:node_cap;
  Meter.write_range t.meter Pm ~addr:(addr + bitmap_off) ~len:8;
  Meter.persist_range t.meter ~addr:(addr + bitmap_off) ~len:8

(* deletion: slot-array rewrite + bitmap flip *)
let charge_small_delete t addr =
  Meter.write_range t.meter Pm ~addr:(addr + slots_off) ~len:node_cap;
  Meter.persist_range t.meter ~addr:(addr + slots_off) ~len:node_cap;
  Meter.write_range t.meter Pm ~addr:(addr + bitmap_off) ~len:8;
  Meter.persist_range t.meter ~addr:(addr + bitmap_off) ~len:8

(* "expensive logging for a node split": redo-log writes guarding the
   rearrangement, the full new node, and both touched headers *)
let charge_split t ~old_addr ~new_addr =
  (* redo log: begin record + commit *)
  Meter.persist_range t.meter ~addr:8 ~len:24;
  Meter.write_range t.meter Pm ~addr:new_addr ~len:node_bytes;
  Meter.persist_range t.meter ~addr:new_addr ~len:node_bytes;
  Meter.write_range t.meter Pm ~addr:(old_addr + bitmap_off) ~len:(8 + node_cap);
  Meter.persist_range t.meter ~addr:(old_addr + bitmap_off) ~len:(8 + node_cap);
  Meter.persist_range t.meter ~addr:8 ~len:8

let alloc_node t = Pmem.alloc t.pool node_bytes

let new_leaf t =
  {
    l_keys = Array.make node_cap "";
    l_vals = Array.make node_cap "";
    l_n = 0;
    l_next = None;
    l_addr = alloc_node t;
  }

let new_inner t =
  {
    i_keys = Array.make (node_cap + 1) "";
    i_kids = Array.make (node_cap + 2) (LeafW { l_keys = [||]; l_vals = [||]; l_n = 0; l_next = None; l_addr = 0 });
    i_n = 0;
    i_addr = alloc_node t;
  }

let create pool =
  let meter = Pmem.meter pool in
  let t =
    {
      pool;
      meter;
      root = LeafW { l_keys = [||]; l_vals = [||]; l_n = 0; l_next = None; l_addr = 0 };
      first_leaf = { l_keys = [||]; l_vals = [||]; l_n = 0; l_next = None; l_addr = 0 };
      count = 0;
    }
  in
  let leaf = new_leaf t in
  t.root <- LeafW leaf;
  t.first_leaf <- leaf;
  t

(* ------------------------------------------------------------------ *)
(* Descent                                                             *)

(* The indirect binary search: one slot-array read, then one entry-key
   read per probed position — each a PM access at the probed slot's real
   address, so locality is what the layout gives, not an artefact. *)
let inner_child_index t inn key =
  touch t (inn.i_addr + slots_off);
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      touch t (inn.i_addr + entry_off mid);
      if inn.i_keys.(mid) <= key then go (mid + 1) hi else go lo mid
    end
  in
  go 0 inn.i_n

let rec find_leaf t node key =
  match node with
  | LeafW l -> l
  | InnerW inn -> find_leaf t inn.i_kids.(inner_child_index t inn key) key

let leaf_find t l key =
  touch t (l.l_addr + slots_off);
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      touch t (l.l_addr + entry_off mid);
      let c = String.compare l.l_keys.(mid) key in
      if c = 0 then Some mid else if c < 0 then go (mid + 1) hi else go lo mid
    end
  in
  go 0 l.l_n

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)

let leaf_insert_at t l pos key value =
  Array.blit l.l_keys pos l.l_keys (pos + 1) (l.l_n - pos);
  Array.blit l.l_vals pos l.l_vals (pos + 1) (l.l_n - pos);
  l.l_keys.(pos) <- key;
  l.l_vals.(pos) <- value;
  l.l_n <- l.l_n + 1;
  charge_small_insert t l.l_addr (l.l_n - 1)

let lower_bound keys n key =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if keys.(mid) < key then go (mid + 1) hi else go lo mid
  in
  go 0 n

let rec ins t node key value : (string * node) option =
  match node with
  | LeafW l -> (
      match leaf_find t l key with
      | Some i ->
          (* out-of-place value rewrite committed by the slot flip *)
          l.l_vals.(i) <- value;
          charge_small_insert t l.l_addr i;
          None
      | None ->
          if l.l_n < node_cap then begin
            leaf_insert_at t l (lower_bound l.l_keys l.l_n key) key value;
            t.count <- t.count + 1;
            None
          end
          else begin
            (* logged leaf split *)
            let right = new_leaf t in
            charge_split t ~old_addr:l.l_addr ~new_addr:right.l_addr;
            let mid = l.l_n / 2 in
            Array.blit l.l_keys mid right.l_keys 0 (l.l_n - mid);
            Array.blit l.l_vals mid right.l_vals 0 (l.l_n - mid);
            right.l_n <- l.l_n - mid;
            l.l_n <- mid;
            right.l_next <- l.l_next;
            l.l_next <- Some right;
            let sep = right.l_keys.(0) in
            let target = if key < sep then l else right in
            (match ins t (LeafW target) key value with
            | None -> ()
            | Some _ -> assert false);
            Some (sep, LeafW right)
          end)
  | InnerW inn -> (
      let i = inner_child_index t inn key in
      match ins t inn.i_kids.(i) key value with
      | None -> None
      | Some (sep, right) ->
          for j = inn.i_n downto i + 1 do
            inn.i_keys.(j) <- inn.i_keys.(j - 1);
            inn.i_kids.(j + 1) <- inn.i_kids.(j)
          done;
          inn.i_keys.(i) <- sep;
          inn.i_kids.(i + 1) <- right;
          inn.i_n <- inn.i_n + 1;
          charge_small_insert t inn.i_addr (inn.i_n - 1);
          if inn.i_n <= node_cap then None
          else begin
            let rinn = new_inner t in
            charge_split t ~old_addr:inn.i_addr ~new_addr:rinn.i_addr;
            let mid = inn.i_n / 2 in
            let promoted = inn.i_keys.(mid) in
            let rn = inn.i_n - mid - 1 in
            Array.blit inn.i_keys (mid + 1) rinn.i_keys 0 rn;
            Array.blit inn.i_kids (mid + 1) rinn.i_kids 0 (rn + 1);
            rinn.i_n <- rn;
            inn.i_n <- mid;
            Some (promoted, InnerW rinn)
          end)

let check_limits key value =
  if String.length key < 1 || String.length key > 24 then
    invalid_arg "Wb_tree: keys must be 1..24 bytes";
  if String.length value > 31 then invalid_arg "Wb_tree: values must be <= 31 bytes"

let insert t ~key ~value =
  check_limits key value;
  match ins t t.root key value with
  | None -> ()
  | Some (sep, right) ->
      let inn = new_inner t in
      inn.i_keys.(0) <- sep;
      inn.i_kids.(0) <- t.root;
      inn.i_kids.(1) <- right;
      inn.i_n <- 1;
      charge_small_insert t inn.i_addr 0;
      t.root <- InnerW inn

(* ------------------------------------------------------------------ *)
(* Search / update / delete / range                                    *)

let search t key =
  if String.length key < 1 || String.length key > 24 then None
  else
    let l = find_leaf t t.root key in
    match leaf_find t l key with None -> None | Some i -> Some (l.l_vals.(i))

let update t ~key ~value =
  check_limits key value;
  let l = find_leaf t t.root key in
  match leaf_find t l key with
  | None -> false
  | Some i ->
      l.l_vals.(i) <- value;
      charge_small_insert t l.l_addr i;
      true

let delete t key =
  if String.length key < 1 || String.length key > 24 then false
  else
    let l = find_leaf t t.root key in
    match leaf_find t l key with
    | None -> false
    | Some i ->
        Array.blit l.l_keys (i + 1) l.l_keys i (l.l_n - i - 1);
        Array.blit l.l_vals (i + 1) l.l_vals i (l.l_n - i - 1);
        l.l_n <- l.l_n - 1;
        charge_small_delete t l.l_addr;
        t.count <- t.count - 1;
        true

let range t ~lo ~hi f =
  let rec walk (l : leaf option) =
    match l with
    | None -> ()
    | Some l ->
        let stop = ref false in
        for i = 0 to l.l_n - 1 do
          let k = l.l_keys.(i) in
          if k > hi then stop := true else if k >= lo then f k l.l_vals.(i)
        done;
        if not !stop then walk l.l_next
  in
  walk (Some (find_leaf t t.root lo))

let count t = t.count

let height t =
  let rec go = function LeafW _ -> 1 | InnerW inn -> 1 + go inn.i_kids.(0) in
  go t.root

let dram_bytes _ = 0
let pm_bytes t = Pmem.live_bytes t.pool

let check_integrity t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let seen = ref 0 in
  let rec chain (l : leaf option) prev =
    match l with
    | None -> ()
    | Some l ->
        seen := !seen + l.l_n;
        let p = ref prev in
        for i = 0 to l.l_n - 1 do
          if l.l_keys.(i) <= !p then
            fail "leaf chain unsorted at %S (prev %S)" l.l_keys.(i) !p;
          p := l.l_keys.(i);
          let routed = find_leaf t t.root l.l_keys.(i) in
          if routed != l then fail "index does not route %S home" l.l_keys.(i)
        done;
        chain l.l_next !p
  in
  chain (Some t.first_leaf) "";
  if !seen <> t.count then fail "count %d but %d chained entries" t.count !seen

let ops t =
  {
    Index_intf.name = "wB+Tree";
    insert = (fun ~key ~value -> insert t ~key ~value);
    search = (fun k -> search t k);
    update = (fun ~key ~value -> update t ~key ~value);
    delete = (fun k -> delete t k);
    range = (fun ~lo ~hi f -> range t ~lo ~hi f);
    count = (fun () -> count t);
    dram_bytes = (fun () -> dram_bytes t);
    pm_bytes = (fun () -> pm_bytes t);
  }
