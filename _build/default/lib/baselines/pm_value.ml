(** Out-of-leaf value objects for the pure-PM baseline trees (WORT,
    WOART, ART+CoW): a length byte followed by the payload, allocated
    directly from the pool — these trees have no EPallocator, which is
    exactly the allocation cost HART's chunking amortises. The paper
    applies this same out-of-place update mechanism to all three
    ART-based trees (§IV-B, Update). *)

module Pmem = Hart_pmem.Pmem

let write pool payload =
  let obj = Pmem.alloc pool (1 + String.length payload) in
  Pmem.set_u8 pool obj (String.length payload);
  if String.length payload > 0 then Pmem.set_string pool ~off:(obj + 1) payload;
  Pmem.persist pool ~off:obj ~len:(1 + String.length payload);
  obj

let read pool obj =
  let len = Pmem.get_u8 pool obj in
  if len = 0 then "" else Pmem.get_string pool ~off:(obj + 1) ~len

let free pool obj =
  let len = Pmem.get_u8 pool obj in
  Pmem.free pool ~off:obj ~len:(1 + len)

(* The shared 40-byte leaf layout (Hart_core.Leaf): key + value pointer.
   [update] is the uniform out-of-place value update: new value written
   and persisted, 8-byte pointer swap as commit, old value freed. *)
let update_leaf pool ~leaf payload =
  let old_v = Hart_core.Leaf.p_value pool ~leaf in
  let new_v = write pool payload in
  Hart_core.Leaf.set_p_value pool ~leaf new_v;
  if old_v <> 0 then free pool old_v

(* Validated read: the final PM key comparison of a radix descent. *)
let read_leaf pool ~leaf key =
  if not (String.equal (Hart_core.Leaf.key pool ~leaf) key) then None
  else
    let v = Hart_core.Leaf.p_value pool ~leaf in
    if v = 0 then None else Some (read pool v)

let free_leaf pool ~leaf =
  let v = Hart_core.Leaf.p_value pool ~leaf in
  if v <> 0 then free pool v;
  Pmem.free pool ~off:leaf ~len:40

let new_leaf pool ~key ~payload =
  let leaf = Pmem.alloc pool 40 in
  Hart_core.Leaf.write_key pool ~leaf key;
  let v = write pool payload in
  Hart_core.Leaf.set_p_value pool ~leaf v;
  leaf
