(** CDDS B-Tree (Venkataraman et al., FAST 2011) — the last tree of the
    paper's §II-C inventory: a {e multi-version} B-tree for PM.

    Consistency through versioning instead of logging: every entry
    carries a [start, end) version interval; a mutation writes new
    versioned entries and commits by atomically persisting the global
    version counter — a crash simply falls back to the last committed
    version. The side effect the HART paper quotes: "it could generate
    many dead entries and dead nodes" — reproduced here: updates and
    deletes only end-date entries, so leaves fill with dead versions
    until a split garbage-collects the live ones, and searches pay to
    skip the corpses ({!dead_entries} exposes the growth).

    Pure-PM; node contents are charge-modelled at pool addresses like
    the other §II-C baselines (DESIGN.md); values inline (≤ 31 bytes). *)

type t

val leaf_cap : int
val create : Hart_pmem.Pmem.t -> t
val insert : t -> key:string -> value:string -> unit
val search : t -> string -> string option
val update : t -> key:string -> value:string -> bool
val delete : t -> string -> bool
val range : t -> lo:string -> hi:string -> (string -> string -> unit) -> unit
val count : t -> int
val version : t -> int
(** The committed global version (one bump per mutation). *)

val dead_entries : t -> int
(** Versioned corpses currently occupying leaf slots. *)

val dram_bytes : t -> int
val pm_bytes : t -> int
val check_integrity : t -> unit
val ops : t -> Index_intf.ops
