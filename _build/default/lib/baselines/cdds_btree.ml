module Pmem = Hart_pmem.Pmem
module Meter = Hart_pmem.Meter

let leaf_cap = 32
let entry_bytes = 64 (* key + value + [start, end) version pair *)
let node_bytes = 16 + (leaf_cap * entry_bytes)
let live_version = max_int

type entry = {
  e_key : string;
  e_value : string;
  e_start : int;
  mutable e_end : int;  (* [live_version] while current *)
}

type node = LeafC of leafc | InnerC of innerc

and leafc = {
  mutable entries : entry array;  (* append-ordered, leaf_cap slots *)
  mutable l_n : int;
  mutable l_next : leafc option;
  l_addr : int;
}

and innerc = {
  mutable i_keys : string array;
  mutable i_kids : node array;
  mutable i_n : int;
  i_addr : int;
}

type t = {
  pool : Pmem.t;
  meter : Meter.t;
  mutable root : node;
  mutable first_leaf : leafc;
  mutable version : int;  (* committed global version *)
  mutable count : int;
}

(* ------------------------------------------------------------------ *)
(* Charged protocol: entry writes persist their slot; every mutation
   commits with one 8-byte atomic persist of the version counter (the
   version record lives at pool offset 8). *)

let touch t addr = Meter.access t.meter Pm ~addr ~write:false

let charge_entry_write t addr slot =
  Meter.write_range t.meter Pm ~addr:(addr + 16 + (slot * entry_bytes)) ~len:entry_bytes;
  Meter.persist_range t.meter ~addr:(addr + 16 + (slot * entry_bytes)) ~len:entry_bytes

let charge_end_stamp t addr slot =
  (* end-dating an entry is one 8-byte field persist *)
  Meter.write_range t.meter Pm ~addr:(addr + 16 + (slot * entry_bytes) + 56) ~len:8;
  Meter.persist_range t.meter ~addr:(addr + 16 + (slot * entry_bytes) + 56) ~len:8

let commit_version t =
  t.version <- t.version + 1;
  Meter.write_range t.meter Pm ~addr:8 ~len:8;
  Meter.persist_range t.meter ~addr:8 ~len:8

let charge_new_node t addr =
  Meter.write_range t.meter Pm ~addr ~len:node_bytes;
  Meter.persist_range t.meter ~addr ~len:node_bytes

let new_leaf t =
  let l =
    {
      entries = Array.make leaf_cap { e_key = ""; e_value = ""; e_start = 0; e_end = 0 };
      l_n = 0;
      l_next = None;
      l_addr = Pmem.alloc t.pool node_bytes;
    }
  in
  charge_new_node t l.l_addr;
  l

let new_inner t =
  {
    i_keys = Array.make (leaf_cap + 1) "";
    i_kids =
      Array.make (leaf_cap + 2)
        (LeafC { entries = [||]; l_n = 0; l_next = None; l_addr = 0 });
    i_n = 0;
    i_addr = Pmem.alloc t.pool node_bytes;
  }

let create pool =
  let meter = Pmem.meter pool in
  let dummy = { entries = [||]; l_n = 0; l_next = None; l_addr = 0 } in
  let t = { pool; meter; root = LeafC dummy; first_leaf = dummy; version = 0; count = 0 } in
  let leaf = new_leaf t in
  t.root <- LeafC leaf;
  t.first_leaf <- leaf;
  t

(* ------------------------------------------------------------------ *)
(* Descent                                                             *)

let inner_child_index t inn key =
  touch t inn.i_addr;
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      touch t (inn.i_addr + 16 + (mid * entry_bytes));
      if inn.i_keys.(mid) <= key then go (mid + 1) hi else go lo mid
  in
  go 0 inn.i_n

let rec find_leaf t node key =
  match node with
  | LeafC l -> l
  | InnerC inn -> find_leaf t inn.i_kids.(inner_child_index t inn key) key

(* scan the append-ordered entries, skipping dead versions: the cost of
   multi-versioning the paper points at *)
let leaf_find_live t l key =
  let found = ref None in
  for i = 0 to l.l_n - 1 do
    touch t (l.l_addr + 16 + (i * entry_bytes));
    let e = l.entries.(i) in
    if e.e_end = live_version && String.equal e.e_key key then found := Some e
  done;
  !found

let live_count l =
  let n = ref 0 in
  for i = 0 to l.l_n - 1 do
    if l.entries.(i).e_end = live_version then incr n
  done;
  !n

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)

let append_entry t l key value =
  let e = { e_key = key; e_value = value; e_start = t.version + 1; e_end = live_version } in
  l.entries.(l.l_n) <- e;
  charge_entry_write t l.l_addr l.l_n;
  l.l_n <- l.l_n + 1

(* Versioned split: the live entries are copied out, the lower half
   rewrites this node in place (a fresh versioned copy, charged as a new
   node so the parent pointer stays valid), the upper half goes to a new
   right sibling. Dead versions are finally collected here — until a
   split, they keep occupying slots, the space behaviour the paper
   criticises. Returns the separator, or [None] when compaction freed
   enough room that no split was needed. *)
let split_leaf t l =
  let live =
    List.sort
      (fun a b -> String.compare a.e_key b.e_key)
      (List.filter
         (fun e -> e.e_end = live_version)
         (Array.to_list (Array.sub l.entries 0 l.l_n)))
  in
  let n = List.length live in
  if n < leaf_cap / 2 then begin
    (* mostly corpses: compact in place, no structural split *)
    l.entries <- Array.make leaf_cap (List.hd (live @ [ { e_key = ""; e_value = ""; e_start = 0; e_end = 0 } ]));
    l.l_n <- 0;
    List.iter
      (fun e ->
        l.entries.(l.l_n) <- e;
        l.l_n <- l.l_n + 1)
      live;
    charge_new_node t l.l_addr;
    commit_version t;
    None
  end
  else begin
    let right = new_leaf t in
    let mid = n / 2 in
    let fresh = Array.make leaf_cap l.entries.(0) in
    let ln = ref 0 in
    List.iteri
      (fun i e ->
        if i < mid then begin
          fresh.(!ln) <- e;
          incr ln
        end
        else begin
          right.entries.(right.l_n) <- e;
          right.l_n <- right.l_n + 1
        end)
      live;
    l.entries <- fresh;
    l.l_n <- !ln;
    charge_new_node t l.l_addr;
    right.l_next <- l.l_next;
    l.l_next <- Some right;
    commit_version t;
    Some (right.entries.(0).e_key, right)
  end

let rec ins t node key value : (string * node) option =
  match node with
  | LeafC l -> (
      match leaf_find_live t l key with
      | Some e when l.l_n < leaf_cap ->
          (* update: end-date the old version, append the new one *)
          e.e_end <- t.version + 1;
          charge_end_stamp t l.l_addr 0;
          append_entry t l key value;
          commit_version t;
          None
      | None when l.l_n < leaf_cap ->
          append_entry t l key value;
          commit_version t;
          t.count <- t.count + 1;
          None
      | _ -> (
          match split_leaf t l with
          | None ->
              (* compaction made room: retry in place *)
              ins t node key value
          | Some (sep, right) ->
              let target = if key < sep then l else right in
              (match ins t (LeafC target) key value with
              | None -> ()
              | Some _ -> assert false);
              Some (sep, LeafC right)))
  | InnerC inn -> (
      let i = inner_child_index t inn key in
      match ins t inn.i_kids.(i) key value with
      | None -> None
      | Some (sep, right) ->
          for j = inn.i_n downto i + 1 do
            inn.i_keys.(j) <- inn.i_keys.(j - 1);
            inn.i_kids.(j + 1) <- inn.i_kids.(j)
          done;
          inn.i_keys.(i) <- sep;
          inn.i_kids.(i + 1) <- right;
          inn.i_n <- inn.i_n + 1;
          charge_entry_write t inn.i_addr (inn.i_n - 1);
          if inn.i_n <= leaf_cap then None
          else begin
            let rinn = new_inner t in
            charge_new_node t rinn.i_addr;
            let mid = inn.i_n / 2 in
            let promoted = inn.i_keys.(mid) in
            let rn = inn.i_n - mid - 1 in
            Array.blit inn.i_keys (mid + 1) rinn.i_keys 0 rn;
            Array.blit inn.i_kids (mid + 1) rinn.i_kids 0 (rn + 1);
            rinn.i_n <- rn;
            inn.i_n <- mid;
            Some (promoted, InnerC rinn)
          end)

let check_limits key value =
  if String.length key < 1 || String.length key > 24 then
    invalid_arg "Cdds_btree: keys must be 1..24 bytes";
  if String.length value > 31 then
    invalid_arg "Cdds_btree: values must be <= 31 bytes"

let insert t ~key ~value =
  check_limits key value;
  match ins t t.root key value with
  | None -> ()
  | Some (sep, right) ->
      let inn = new_inner t in
      charge_new_node t inn.i_addr;
      inn.i_keys.(0) <- sep;
      inn.i_kids.(0) <- t.root;
      inn.i_kids.(1) <- right;
      inn.i_n <- 1;
      t.root <- InnerC inn

let search t key =
  if String.length key < 1 || String.length key > 24 then None
  else
    match leaf_find_live t (find_leaf t t.root key) key with
    | Some e -> Some e.e_value
    | None -> None

let update t ~key ~value =
  if search t key = None then false
  else begin
    insert t ~key ~value;
    true
  end

let delete t key =
  if String.length key < 1 || String.length key > 24 then false
  else
    let l = find_leaf t t.root key in
    match leaf_find_live t l key with
    | None -> false
    | Some e ->
        e.e_end <- t.version + 1;
        charge_end_stamp t l.l_addr 0;
        commit_version t;
        t.count <- t.count - 1;
        true

let range t ~lo ~hi f =
  let rec walk (l : leafc option) =
    match l with
    | None -> ()
    | Some l ->
        let live =
          List.sort
            (fun a b -> String.compare a.e_key b.e_key)
            (List.filter
               (fun e -> e.e_end = live_version)
               (Array.to_list (Array.sub l.entries 0 l.l_n)))
        in
        let stop = ref false in
        List.iter
          (fun e ->
            if e.e_key > hi then stop := true
            else if e.e_key >= lo then f e.e_key e.e_value)
          live;
        if not !stop then walk l.l_next
  in
  walk (Some (find_leaf t t.root lo))

let count t = t.count
let version t = t.version

let dead_entries t =
  let n = ref 0 in
  let rec walk (l : leafc option) =
    match l with
    | None -> ()
    | Some l ->
        n := !n + (l.l_n - live_count l);
        walk l.l_next
  in
  walk (Some t.first_leaf);
  !n

let dram_bytes _ = 0
let pm_bytes t = Pmem.live_bytes t.pool

let check_integrity t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let seen = ref 0 in
  let rec walk (l : leafc option) prev =
    match l with
    | None -> ()
    | Some l ->
        let live =
          List.sort
            (fun a b -> String.compare a.e_key b.e_key)
            (List.filter
               (fun e -> e.e_end = live_version)
               (Array.to_list (Array.sub l.entries 0 l.l_n)))
        in
        seen := !seen + List.length live;
        let p = ref prev in
        List.iter
          (fun e ->
            if e.e_key <= !p then fail "chain unsorted at %S" e.e_key;
            p := e.e_key;
            if find_leaf t t.root e.e_key != l then
              fail "index does not route %S home" e.e_key;
            if e.e_start > t.version then fail "entry from the future";
            ())
          live;
        walk l.l_next !p
  in
  walk (Some t.first_leaf) "";
  if !seen <> t.count then fail "count %d but %d live entries" t.count !seen

let ops t =
  {
    Index_intf.name = "CDDS";
    insert = (fun ~key ~value -> insert t ~key ~value);
    search = (fun k -> search t k);
    update = (fun ~key ~value -> update t ~key ~value);
    delete = (fun k -> delete t k);
    range = (fun ~lo ~hi f -> range t ~lo ~hi f);
    count = (fun () -> count t);
    dram_bytes = (fun () -> dram_bytes t);
    pm_bytes = (fun () -> pm_bytes t);
  }
