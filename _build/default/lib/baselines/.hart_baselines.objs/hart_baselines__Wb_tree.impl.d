lib/baselines/wb_tree.ml: Array Hart_pmem Index_intf Printf String
