lib/baselines/pm_value.ml: Hart_core Hart_pmem String
