lib/baselines/wort.ml: Array Char Hart_core Hart_pmem Index_intf List Pm_value Printf String
