lib/baselines/hart_index.ml: Hart_core Index_intf
