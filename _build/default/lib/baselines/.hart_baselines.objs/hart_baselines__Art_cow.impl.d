lib/baselines/art_cow.ml: Hart_art Hart_core Hart_pmem Hashtbl Index_intf Pm_value
