lib/baselines/art_cow.mli: Hart_pmem Index_intf
