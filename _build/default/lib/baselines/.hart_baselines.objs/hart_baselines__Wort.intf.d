lib/baselines/wort.mli: Hart_pmem Index_intf
