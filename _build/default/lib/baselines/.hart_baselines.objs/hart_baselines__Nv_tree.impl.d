lib/baselines/nv_tree.ml: Array Hart_pmem Hashtbl Index_intf Int64 List Printf String
