lib/baselines/cdds_btree.ml: Array Hart_pmem Index_intf List Printf String
