lib/baselines/cdds_btree.mli: Hart_pmem Index_intf
