lib/baselines/nv_tree.mli: Hart_pmem Index_intf
