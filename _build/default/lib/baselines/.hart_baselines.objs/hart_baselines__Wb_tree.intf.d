lib/baselines/wb_tree.mli: Hart_pmem Index_intf
