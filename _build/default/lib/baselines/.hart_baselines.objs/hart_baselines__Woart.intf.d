lib/baselines/woart.mli: Hart_pmem Index_intf
