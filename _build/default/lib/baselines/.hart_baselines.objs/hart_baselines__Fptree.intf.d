lib/baselines/fptree.mli: Hart_pmem Index_intf
