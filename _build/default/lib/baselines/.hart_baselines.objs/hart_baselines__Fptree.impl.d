lib/baselines/fptree.ml: Array Char Hart_pmem Hart_util Index_intf Int64 List Printf String
