lib/baselines/woart.ml: Hart_art Hart_core Hart_pmem Index_intf Pm_value
