(** wB+-Tree (Chen & Jin, VLDB 2015) — extra baseline from the paper's
    §II-C: a write-atomic B+-tree for pure PM.

    Every node (inner and leaf) lives on PM and keeps its entries
    {e unsorted}, with sorted order restored through an indirection
    {e slot array} and occupancy through a bitmap; a small insert then
    commits with entry-write → slot-array write → atomic bitmap flip
    (three ordered persists), no logging. The cost the HART paper quotes
    ("requires expensive logging or CoW for a node split") appears on
    splits: a redo log guards the multi-node rearrangement.

    Node contents are charge-modelled at pool addresses like the other
    pure-PM baselines (DESIGN.md); values are stored inline (≤ 31
    bytes). Being pure-PM it needs no recovery procedure. *)

type t

val node_cap : int
val create : Hart_pmem.Pmem.t -> t
val insert : t -> key:string -> value:string -> unit
val search : t -> string -> string option
val update : t -> key:string -> value:string -> bool
val delete : t -> string -> bool
val range : t -> lo:string -> hi:string -> (string -> string -> unit) -> unit
val count : t -> int
val height : t -> int
val dram_bytes : t -> int
(** 0: pure-PM tree. *)

val pm_bytes : t -> int
val check_integrity : t -> unit
val ops : t -> Index_intf.ops
