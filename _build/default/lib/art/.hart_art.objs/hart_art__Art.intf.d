lib/art/art.mli: Hart_pmem
