lib/art/art.ml: Array Bytes Char Hart_pmem Printf String
