(* Quickstart: create a HART over a simulated PM pool, run the four basic
   operations, inspect the persistence accounting.

   Run with: dune exec examples/quickstart.exe *)

module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Pmem = Hart_pmem.Pmem
module Hart = Hart_core.Hart

let () =
  (* A pool simulates the PM device: pick the paper's 300/300 ns latency
     configuration. One meter collects every memory event. *)
  let meter = Meter.create Latency.c300_300 in
  let pool = Pmem.create meter in

  (* A fresh HART with the paper's default 2-byte hash-key split. *)
  let hart = Hart.create ~kh:2 pool in

  (* Insert: keys up to 24 bytes, values up to 31 bytes. *)
  Hart.insert hart ~key:"AABF" ~value:"first";
  Hart.insert hart ~key:"AACD" ~value:"second";
  Hart.insert hart ~key:"XY01" ~value:"third";
  Printf.printf "count      = %d\n" (Hart.count hart);
  Printf.printf "ARTs       = %d (one per distinct 2-byte prefix)\n"
    (Hart.art_count hart);

  (* Search (Algorithm 4). *)
  (match Hart.search hart "AABF" with
  | Some v -> Printf.printf "AABF       = %S\n" v
  | None -> assert false);

  (* Update is out-of-place under a persistent micro-log (Algorithm 3). *)
  assert (Hart.update hart ~key:"AABF" ~value:"first-v2");
  Printf.printf "AABF       = %S (after update)\n"
    (Option.get (Hart.search hart "AABF"));

  (* Range queries span ARTs in key order. *)
  print_string "range      =";
  Hart.range hart ~lo:"AA" ~hi:"ZZ" (fun k _ -> Printf.printf " %s" k);
  print_newline ();

  (* Deletion resets the persistent bitmap bits and recycles empty
     chunks (Algorithms 5 and 6). *)
  assert (Hart.delete hart "XY01");
  Printf.printf "after del  = %d keys, %d ARTs\n" (Hart.count hart)
    (Hart.art_count hart);

  (* The whole story is visible on the meter: flushes are persistent()
     cache-line flushes, sim_ns is the emulated clock. *)
  let c = Meter.counters meter in
  Printf.printf "PM events  : %d flushes, %d fences, %d allocations\n"
    c.Meter.flushes c.Meter.fences c.Meter.pm_allocs;
  Printf.printf "sim clock  : %.2f us\n" (Meter.sim_ns meter /. 1000.);
  Printf.printf "PM bytes   : %d live\n" (Hart.pm_bytes hart);
  Printf.printf "DRAM bytes : %d (hash table + ART inner nodes)\n"
    (Hart.dram_bytes hart);

  (* Nothing above was special-cased for the demo: verify the full
     DRAM-vs-PM integrity contract. *)
  Hart.check_integrity hart;
  print_endline "integrity  : OK"
