(* Concurrent HART: several domains hammer a shared HART through the
   per-ART reader/writer locks (§III-A.3), including read-modify-write
   races on shared counters, then the final state is integrity-checked.

   Run with: dune exec examples/concurrent_counter.exe *)

module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Pmem = Hart_pmem.Pmem
module Hart = Hart_core.Hart
module Hart_mt = Hart_core.Hart_mt
module Rng = Hart_util.Rng

let n_domains = 4
let ops_per_domain = 2_000

let () =
  let pool = Pmem.create (Meter.create Latency.c300_100) in
  let store = Hart_mt.create pool in

  (* Shared counters, one per 2-byte prefix = one per ART, so increments
     to the same counter contend on the same ART write lock. *)
  let counters = [| "C0hits"; "C1hits"; "C2hits"; "C3hits" |] in
  Array.iter (fun key -> Hart_mt.insert store ~key ~value:"0") counters;

  let worker d =
    let rng = Rng.create (Int64.of_int (1000 + d)) in
    for i = 0 to ops_per_domain - 1 do
      (* private keys: no contention, writes on distinct ARTs *)
      Hart_mt.insert store
        ~key:(Printf.sprintf "d%d:%05d" d i)
        ~value:(Printf.sprintf "v%d" i);
      (* shared counter: atomic read-modify-write under the counter's
         ART write lock *)
      if i mod 10 = 0 then begin
        let key = counters.(Rng.int rng (Array.length counters)) in
        Hart_mt.rmw store ~key (fun v ->
            string_of_int (1 + int_of_string (Option.value v ~default:"0")))
      end
    done
  in
  let domains = List.init n_domains (fun d -> Domain.spawn (fun () -> worker d)) in
  List.iter Domain.join domains;

  let total_incrs =
    Array.fold_left
      (fun acc key ->
        acc + int_of_string (Option.get (Hart_mt.search store key)))
      0 counters
  in
  Printf.printf "domains      : %d x %d ops\n" n_domains ops_per_domain;
  Printf.printf "keys stored  : %d\n" (Hart_mt.count store);
  Printf.printf "counter sum  : %d (expected %d: no lost updates)\n" total_incrs
    (n_domains * (ops_per_domain / 10));
  assert (total_incrs = n_domains * (ops_per_domain / 10));
  assert (Hart_mt.count store = (n_domains * ops_per_domain) + Array.length counters);
  Hart.check_integrity (Hart_mt.underlying store);
  print_endline "integrity    : OK (per-ART locking preserved all invariants)"
