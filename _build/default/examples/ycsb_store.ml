(* A small cloud-KV-store scenario: preload a database, run the paper's
   three YCSB mixes against all four persistent indexes, and print a
   throughput comparison on the simulated clock.

   Run with: dune exec examples/ycsb_store.exe *)

module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Pmem = Hart_pmem.Pmem
module Index_intf = Hart_baselines.Index_intf
module Keygen = Hart_workloads.Keygen
module Workload = Hart_workloads.Workload

let preload_n = 10_000
let n_ops = 20_000

let make_index name pool =
  match name with
  | "HART" -> Hart_baselines.Hart_index.ops (Hart_core.Hart.create pool)
  | "WOART" -> Hart_baselines.Woart.ops (Hart_baselines.Woart.create pool)
  | "ART+CoW" -> Hart_baselines.Art_cow.ops (Hart_baselines.Art_cow.create pool)
  | "FPTree" -> Hart_baselines.Fptree.ops (Hart_baselines.Fptree.create pool)
  | _ -> assert false

let () =
  let universe = Keygen.generate Keygen.Random (preload_n + n_ops) in
  let preloaded = Array.sub universe 0 preload_n in
  let fresh = Array.sub universe preload_n n_ops in
  Printf.printf
    "YCSB store: %d preloaded records, %d-op mixes, 300/300 ns PM, uniform\n\n"
    preload_n n_ops;
  Printf.printf "%-22s %10s %10s %10s\n" "" "HART" "WOART+CoW" "FPTree";
  List.iter
    (fun mix ->
      let cells =
        List.map
          (fun name ->
            let meter = Meter.create Latency.c300_300 in
            let pool = Pmem.create meter in
            let ops = make_index name pool in
            Array.iteri
              (fun i key -> ops.Index_intf.insert ~key ~value:(Keygen.value_for i))
              preloaded;
            let trace = Workload.ycsb mix ~preloaded ~fresh ~n_ops in
            let t0 = Meter.sim_ns meter in
            ignore (Workload.apply ops trace : int);
            let kops =
              float_of_int n_ops /. ((Meter.sim_ns meter -. t0) /. 1e9) /. 1e3
            in
            kops)
          [ "HART"; "WOART"; "FPTree" ]
      in
      match cells with
      | [ hart; woart; fptree ] ->
          Printf.printf "%-22s %8.0fk %8.0fk %8.0fk  ops/s\n"
            mix.Workload.mix_name hart woart fptree
      | _ -> assert false)
    Workload.mixes;
  print_newline ();
  print_endline
    "(HART should lead on the write-heavy mixes; see bench/main.exe for\n\
     the full Fig. 9 grid across all latency configurations.)"
