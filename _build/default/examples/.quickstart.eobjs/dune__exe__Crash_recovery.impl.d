examples/crash_recovery.ml: Hart_core Hart_pmem Printf
