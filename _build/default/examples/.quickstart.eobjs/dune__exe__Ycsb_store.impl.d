examples/ycsb_store.ml: Array Hart_baselines Hart_core Hart_pmem Hart_workloads List Printf
