examples/concurrent_counter.ml: Array Domain Hart_core Hart_pmem Hart_util Int64 List Option Printf
