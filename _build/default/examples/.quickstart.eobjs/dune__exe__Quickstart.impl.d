examples/quickstart.ml: Hart_core Hart_pmem Option Printf
