examples/ycsb_store.mli:
