examples/quickstart.mli:
