examples/concurrent_counter.mli:
