(* Crash-recovery drill: power-fail a HART in the middle of operations,
   then recover (Algorithm 7) and show that every completed operation
   survived, the in-flight one is atomic, and no PM leaks.

   Run with: dune exec examples/crash_recovery.exe *)

module Latency = Hart_pmem.Latency
module Meter = Hart_pmem.Meter
module Pmem = Hart_pmem.Pmem
module Hart = Hart_core.Hart

let () =
  let meter = Meter.create Latency.c300_300 in
  let pool = Pmem.create meter in
  let hart = Hart.create pool in

  (* Phase 1: a committed population. *)
  for i = 0 to 999 do
    Hart.insert hart ~key:(Printf.sprintf "user:%04d" i)
      ~value:(Printf.sprintf "bal=%03d" (i mod 500))
  done;
  Printf.printf "before crash : %d keys in %d ARTs\n" (Hart.count hart)
    (Hart.art_count hart);

  (* Phase 2: crash in the middle of an insertion. We arm the crash point
     three cache-line flushes into the operation — inside Algorithm 1's
     window where the value object is persistent but the leaf bit is not. *)
  Pmem.arm_crash pool ~after_flushes:3;
  (try Hart.insert hart ~key:"user:victim" ~value:"partial"
   with Pmem.Crash_injected -> print_endline "power failure : injected mid-insert");

  (* The machine is gone. All DRAM state (hash table, ART inner nodes)
     is lost; only flushed PM cache lines survive in the pool. *)

  (* Phase 3: recovery — rebuild everything from the PM leaf chunks. *)
  let recovered = Hart.recover pool in
  Printf.printf "after recover: %d keys in %d ARTs\n" (Hart.count recovered)
    (Hart.art_count recovered);
  assert (Hart.count recovered = 1000);
  (match Hart.search recovered "user:victim" with
  | None -> print_endline "victim key   : cleanly absent (atomic insertion)"
  | Some v -> Printf.printf "victim key   : fully present = %S\n" v);

  (* Every committed key is intact. *)
  for i = 0 to 999 do
    let k = Printf.sprintf "user:%04d" i in
    match Hart.search recovered k with
    | Some v when v = Printf.sprintf "bal=%03d" (i mod 500) -> ()
    | _ -> failwith ("lost or corrupted: " ^ k)
  done;
  print_endline "data check   : all 1000 committed keys intact";

  (* Leak check: the value object the crashed insert allocated was
     reclaimed by the attach-time repair sweep (Algorithm 2 lines 12-16),
     so the strict no-leak contract holds. *)
  Hart.check_integrity recovered;
  print_endline "leak check   : no persistent memory leaks";

  (* The recovered tree is fully operational. *)
  Hart.insert recovered ~key:"user:victim" ~value:"retried";
  assert (Hart.search recovered "user:victim" = Some "retried");
  print_endline "post-recovery: insert/search work; drill complete"
